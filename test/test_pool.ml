(* Util.Pool (the domain pool behind every parallel sweep) and
   Prng.split_n (per-task stream derivation): structural properties of
   map, exception transparency, nested-map fallback, stream independence,
   and the end-to-end guarantee the experiment layer sells — rendered
   output is byte-identical at -j 1 and -j 8. *)

module Pool = Util.Pool
module Prng = Util.Prng

let with_pool ~jobs f =
  let p = Pool.create ~jobs in
  Fun.protect ~finally:(fun () -> Pool.shutdown p) (fun () -> f p)

(* --- map structure --- *)

let test_empty () =
  with_pool ~jobs:4 (fun p ->
      Alcotest.(check (array int)) "empty" [||] (Pool.map p [||] ~f:(fun ~idx:_ x -> x)))

let test_single () =
  with_pool ~jobs:4 (fun p ->
      Alcotest.(check (array int)) "single" [| 14 |]
        (Pool.map p [| 7 |] ~f:(fun ~idx:_ x -> 2 * x)))

let test_jobs_exceed_tasks () =
  with_pool ~jobs:8 (fun p ->
      Alcotest.(check (array int)) "3 tasks on 8 jobs" [| 0; 11; 22 |]
        (Pool.map p [| 0; 1; 2 |] ~f:(fun ~idx:_ x -> 11 * x)))

let test_order_and_idx () =
  with_pool ~jobs:4 (fun p ->
      let n = 1000 in
      let input = Array.init n (fun i -> i) in
      let out = Pool.map p input ~f:(fun ~idx x -> idx + x) in
      Alcotest.(check (array int)) "results land at their input index"
        (Array.init n (fun i -> 2 * i))
        out)

let test_serial_pool_matches () =
  let input = Array.init 64 (fun i -> i * i) in
  let f ~idx x = (idx * 31) + x in
  let serial = with_pool ~jobs:1 (fun p -> Pool.map p input ~f) in
  let parallel = with_pool ~jobs:4 (fun p -> Pool.map p input ~f) in
  Alcotest.(check (array int)) "jobs=1 and jobs=4 agree" serial parallel

let test_many_maps_reuse () =
  (* the pool must survive many successive maps (workers re-park between
     jobs and pick up the next generation) *)
  with_pool ~jobs:4 (fun p ->
      for round = 1 to 100 do
        let out = Pool.map p (Array.make 17 round) ~f:(fun ~idx x -> idx + x) in
        Alcotest.(check int) "round result" (16 + round) out.(16)
      done)

(* --- exceptions --- *)

exception Boom of string

let test_exception_propagation () =
  with_pool ~jobs:4 (fun p ->
      let input = Array.init 32 (fun i -> i) in
      (match
         Pool.map p input ~f:(fun ~idx x ->
             if idx = 7 then raise (Boom "task 7") else x)
       with
      | _ -> Alcotest.fail "expected Task_failed"
      | exception Pool.Task_failed { index; exn } ->
        Alcotest.(check int) "failing index" 7 index;
        (match exn with
         | Boom m -> Alcotest.(check string) "original exn" "task 7" m
         | _ -> Alcotest.fail "exn not preserved"));
      (* the pool is still usable after a failed map *)
      let out = Pool.map p input ~f:(fun ~idx:_ x -> x + 1) in
      Alcotest.(check int) "pool reusable" 32 out.(31))

let test_exception_serial_consistent () =
  with_pool ~jobs:1 (fun p ->
      match Pool.map p [| 0; 1; 2 |] ~f:(fun ~idx x -> if idx = 2 then failwith "s" else x) with
      | _ -> Alcotest.fail "expected Task_failed"
      | exception Pool.Task_failed { index; exn = Failure _ } ->
        Alcotest.(check int) "serial index" 2 index
      | exception _ -> Alcotest.fail "wrong exception shape")

(* --- nested maps fall back to serial instead of deadlocking --- *)

let test_nested_map () =
  with_pool ~jobs:4 (fun p ->
      let out =
        Pool.map p (Array.init 8 (fun i -> i)) ~f:(fun ~idx:_ x ->
            let inner = Pool.map p (Array.make 5 x) ~f:(fun ~idx:_ y -> y + 1) in
            Array.fold_left ( + ) 0 inner)
      in
      Alcotest.(check (array int)) "nested maps compute"
        (Array.init 8 (fun i -> 5 * (i + 1)))
        out)

(* --- persistent teams --- *)

let test_team_runs_every_member () =
  let team = Pool.Team.create ~size:4 in
  Fun.protect
    ~finally:(fun () -> Pool.Team.shutdown team)
    (fun () ->
      Alcotest.(check int) "size" 4 (Pool.Team.size team);
      let hits = Array.make 4 0 in
      (* members write disjoint slots, so no synchronisation is needed *)
      for _ = 1 to 50 do
        Pool.Team.run team (fun w -> hits.(w) <- hits.(w) + 1)
      done;
      Alcotest.(check (array int)) "every member ran every section"
        [| 50; 50; 50; 50 |] hits)

let test_team_of_one () =
  let team = Pool.Team.create ~size:1 in
  Fun.protect
    ~finally:(fun () -> Pool.Team.shutdown team)
    (fun () ->
      let saw = ref (-1) in
      Pool.Team.run team (fun w -> saw := w);
      Alcotest.(check int) "caller is member 0" 0 !saw)

let test_team_exception () =
  let team = Pool.Team.create ~size:3 in
  Fun.protect
    ~finally:(fun () -> Pool.Team.shutdown team)
    (fun () ->
      (match Pool.Team.run team (fun w -> if w = 2 then raise (Boom "member 2"))
       with
      | () -> Alcotest.fail "expected the member's exception"
      | exception Boom m -> Alcotest.(check string) "original exn" "member 2" m);
      (* the team survives a failed section *)
      let total = Atomic.make 0 in
      Pool.Team.run team (fun _ -> Atomic.incr total);
      Alcotest.(check int) "team reusable" 3 (Atomic.get total))

(* --- the shared pool --- *)

let test_shared_pool_resize () =
  Pool.set_jobs 3;
  Alcotest.(check int) "resized" 3 (Pool.current_jobs ());
  let out = Pool.run (Array.init 10 (fun i -> i)) ~f:(fun ~idx:_ x -> x * 3) in
  Alcotest.(check int) "shared run" 27 out.(9);
  Pool.set_jobs (Pool.default_jobs ())

(* --- Prng.split_n --- *)

let test_split_n_zero () =
  let g1 = Prng.of_int 99 and g2 = Prng.of_int 99 in
  Alcotest.(check int) "empty" 0 (Array.length (Prng.split_n g1 0));
  Alcotest.(check int64) "parent untouched" (Prng.next g2) (Prng.next g1)

let split_n_matches_splits =
  QCheck.Test.make ~count:50 ~name:"split_n g n consumes g like n splits"
    QCheck.(pair small_int (int_bound 16))
    (fun (seed, n) ->
      let g1 = Prng.of_int seed and g2 = Prng.of_int seed in
      let a = Prng.split_n g1 n in
      let b = Array.init n (fun _ -> Prng.split g2) |> Array.map Fun.id in
      (* sibling streams agree draw for draw... *)
      Array.iteri
        (fun i gi ->
          for _ = 1 to 3 do
            if Prng.next gi <> Prng.next b.(i) then
              QCheck.Test.fail_reportf "stream %d diverges" i
          done)
        a;
      (* ...and the parents are left in identical states *)
      Prng.next g1 = Prng.next g2)

let siblings_non_overlapping =
  QCheck.Test.make ~count:5 ~name:"sibling streams pairwise non-overlapping over 10k draws"
    QCheck.small_int
    (fun seed ->
      let streams = Prng.split_n (Prng.of_int seed) 4 in
      let seen : (int64, int) Hashtbl.t = Hashtbl.create 40_000 in
      Array.iteri
        (fun si g ->
          for _ = 1 to 10_000 do
            let v = Prng.next g in
            match Hashtbl.find_opt seen v with
            | Some sj when sj <> si ->
              QCheck.Test.fail_reportf "streams %d and %d share output %Ld" sj si v
            | _ -> Hashtbl.replace seen v si
          done)
        streams;
      true)

(* --- end-to-end determinism: experiment output vs -j --- *)

let render_at_jobs jobs render =
  Pool.set_jobs jobs;
  let out = render () in
  Pool.set_jobs (Pool.default_jobs ());
  out

let test_table2_deterministic () =
  let at1 = render_at_jobs 1 (fun () -> Experiments.Table2.to_string ()) in
  let at8 = render_at_jobs 8 (fun () -> Experiments.Table2.to_string ()) in
  Alcotest.(check string) "table2 byte-identical at -j 1 and -j 8" at1 at8

let test_fig5_deterministic () =
  let profile =
    { Experiments.Profile.quick with
      Experiments.Profile.iperf_reps = 2;
      iperf_duration_s = 1.5 }
  in
  let render () = Experiments.Fig5.to_string ~profile () in
  let at1 = render_at_jobs 1 render in
  let at8 = render_at_jobs 8 render in
  Alcotest.(check string) "fig5 byte-identical at -j 1 and -j 8" at1 at8

let () =
  Alcotest.run "pool"
    [
      ( "map",
        [
          Alcotest.test_case "empty input" `Quick test_empty;
          Alcotest.test_case "single element" `Quick test_single;
          Alcotest.test_case "jobs > tasks" `Quick test_jobs_exceed_tasks;
          Alcotest.test_case "order and idx" `Quick test_order_and_idx;
          Alcotest.test_case "jobs=1 matches jobs=4" `Quick test_serial_pool_matches;
          Alcotest.test_case "100 maps on one pool" `Quick test_many_maps_reuse;
        ] );
      ( "exceptions",
        [
          Alcotest.test_case "index + exn preserved, pool reusable" `Quick
            test_exception_propagation;
          Alcotest.test_case "serial path raises the same shape" `Quick
            test_exception_serial_consistent;
        ] );
      ( "nesting",
        [ Alcotest.test_case "nested map serial fallback" `Quick test_nested_map ] );
      ( "team",
        [
          Alcotest.test_case "every member runs every section" `Quick
            test_team_runs_every_member;
          Alcotest.test_case "team of one" `Quick test_team_of_one;
          Alcotest.test_case "member exception propagates" `Quick
            test_team_exception;
        ] );
      ( "shared pool",
        [ Alcotest.test_case "set_jobs resizes" `Quick test_shared_pool_resize ] );
      ( "prng split_n",
        [
          Alcotest.test_case "n = 0" `Quick test_split_n_zero;
          QCheck_alcotest.to_alcotest split_n_matches_splits;
          QCheck_alcotest.to_alcotest siblings_non_overlapping;
        ] );
      ( "determinism vs -j",
        [
          Alcotest.test_case "table2 sweep" `Slow test_table2_deterministic;
          Alcotest.test_case "fig5 sweep" `Slow test_fig5_deterministic;
        ] );
    ]
