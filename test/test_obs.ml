(* Tests for the unified telemetry layer (lib/obs): histogram bucket
   geometry, shard-merge algebra, zero-allocation hot-path updates,
   snapshot determinism across pool widths, and the export formats. *)

module Registry = Kar_obs.Registry
module Export = Kar_obs.Export
module Span = Kar_obs.Span
module Pool = Util.Pool

(* --- bucket geometry --- *)

let test_small_values_exact () =
  (* values 0..15 get a bucket to themselves: bounds collapse to (v, v) *)
  for v = 0 to 15 do
    let b = Registry.bucket_of_value v in
    let lo, hi = Registry.bucket_bounds b in
    Alcotest.(check bool)
      (Printf.sprintf "value %d is exact (bounds %d..%d)" v lo hi)
      true
      ((v = 0 && hi = 0) || (lo = v && hi = v))
  done

let test_powers_of_two_are_bucket_floors () =
  (* every power of two >= 16 starts a fresh sub-bucket: it is the
     inclusive lower bound of its own bucket *)
  let e = ref 4 in
  while 1 lsl !e > 0 && !e <= 61 do
    let v = 1 lsl !e in
    let lo, _hi = Registry.bucket_bounds (Registry.bucket_of_value v) in
    Alcotest.(check int) (Printf.sprintf "2^%d is its bucket's floor" !e) v lo;
    incr e
  done

let test_bounds_partition () =
  (* consecutive buckets tile the value range with no gap or overlap *)
  for b = 0 to Registry.n_buckets - 2 do
    let _, hi = Registry.bucket_bounds b in
    let lo', _ = Registry.bucket_bounds (b + 1) in
    Alcotest.(check int) (Printf.sprintf "bucket %d..%d contiguous" b (b + 1))
      (hi + 1) lo'
  done

let test_bucket_relative_width () =
  (* above the exact range the relative bucket width is <= 1/8 *)
  List.iter
    (fun v ->
      let lo, hi = Registry.bucket_bounds (Registry.bucket_of_value v) in
      Alcotest.(check bool)
        (Printf.sprintf "value %d: bucket %d..%d within lo/8" v lo hi)
        true
        (lo <= v && v <= hi && hi - lo + 1 <= max 1 (lo / 8) + 1))
    [ 16; 17; 100; 1_000; 65_535; 1_000_000; 999_999_937; max_int / 2 ]

(* --- histogram vs. exact nearest-rank percentiles --- *)

let test_quantile_within_one_bucket =
  QCheck.Test.make ~count:200
    ~name:"h_quantile = upper bound of the exact nearest-rank value's bucket"
    QCheck.(
      pair
        (list_of_size Gen.(1 -- 400) (int_bound 2_000_000))
        (oneofl [ 50.0; 90.0; 95.0; 99.0 ]))
    (fun (values, p) ->
      QCheck.assume (values <> []);
      let r = Registry.create () in
      let h = Registry.histogram r "test/h-ns" in
      List.iter (Registry.observe h) values;
      let exact =
        int_of_float
          (Util.Stats.percentile_nearest_rank p
             (Array.of_list (List.map float_of_int values)))
      in
      let q = Registry.h_quantile h p in
      let lo, hi = Registry.bucket_bounds (Registry.bucket_of_value exact) in
      (* the reported quantile is the inclusive upper bound of the bucket
         holding the exact nearest-rank sample: never below the true
         value, above it by less than one bucket width *)
      q = hi && lo <= exact && exact <= hi)

(* --- shard-merge algebra --- *)

let schema () =
  let r = Registry.create () in
  let c = Registry.counter r "test/c" in
  let g = Registry.gauge r "test/g" in
  let h = Registry.histogram r "test/h-ns" in
  (r, c, g, h)

let populate seed r =
  let c =
    match Registry.find r "test/c" with
    | Some (Registry.Counter c) -> c
    | _ -> assert false
  in
  let g =
    match Registry.find r "test/g" with
    | Some (Registry.Gauge g) -> g
    | _ -> assert false
  in
  let h =
    match Registry.find r "test/h-ns" with
    | Some (Registry.Histogram h) -> h
    | _ -> assert false
  in
  let x = ref seed in
  for _ = 1 to 100 do
    x := (!x * 48271) mod 0x7FFFFFFF;
    Registry.add c (!x land 0xFF);
    Registry.set_max g (!x land 0xFFFF);
    Registry.observe h (!x land 0xFFFFF)
  done

let test_merge_order_independent () =
  let merged_in_order order =
    let base, _, _, _ = schema () in
    let shards = Registry.shards base ~n:3 in
    Array.iteri (fun i sh -> populate (i + 1) sh) shards;
    List.iter (fun i -> Registry.merge_into ~into:base shards.(i)) order;
    Export.snapshot_line ~t:1.0 base
  in
  let a = merged_in_order [ 0; 1; 2 ] in
  let b = merged_in_order [ 2; 0; 1 ] in
  let c = merged_in_order [ 1; 2; 0 ] in
  Alcotest.(check string) "merge order 012 = 201" a b;
  Alcotest.(check string) "merge order 012 = 120" a c

let test_merge_associative () =
  (* (s0 + s1) + s2 = s0 + (s1 + s2): fold one pair through an
     intermediate registry first, then into the base *)
  let flat =
    let base, _, _, _ = schema () in
    let shards = Registry.shards base ~n:3 in
    Array.iteri (fun i sh -> populate (i + 1) sh) shards;
    Array.iter (fun sh -> Registry.merge_into ~into:base sh) shards;
    Export.snapshot_line ~t:1.0 base
  in
  let nested =
    let base, _, _, _ = schema () in
    let shards = Registry.shards base ~n:3 in
    Array.iteri (fun i sh -> populate (i + 1) sh) shards;
    Registry.merge_into ~into:shards.(1) shards.(2);
    Registry.merge_into ~into:shards.(0) shards.(1);
    Registry.merge_into ~into:base shards.(0);
    Export.snapshot_line ~t:1.0 base
  in
  Alcotest.(check string) "nested merge equals flat merge" flat nested

let test_shards_share_schema () =
  let base, _, _, _ = schema () in
  Registry.probe base "test/probe" (fun () -> 42);
  let sh = (Registry.shards base ~n:1).(0) in
  (* probes are omitted; the three storage-backed metrics carry over in
     registration order with zero values *)
  let names = List.map fst (Registry.metrics sh) in
  Alcotest.(check (list string)) "shard schema"
    [ "test/c"; "test/g"; "test/h-ns" ] names;
  Alcotest.(check int) "shard counter starts at 0" 0 (Registry.read sh "test/c")

(* --- zero allocation on the hot path --- *)

let test_hot_path_zero_alloc () =
  let r = Registry.create () in
  let c = Registry.counter r "test/c" in
  let g = Registry.gauge r "test/g" in
  let h = Registry.histogram r "test/h-ns" in
  (* warm up: first updates touch fresh cache lines but must not allocate
     either; run once so any one-time costs (none expected) are paid *)
  Registry.incr c;
  Registry.observe h 1;
  let before = Gc.minor_words () in
  for i = 1 to 100_000 do
    Registry.incr c;
    Registry.add c 3;
    Registry.set g i;
    Registry.set_max g i;
    Registry.observe h (i * 997)
  done;
  let used = Gc.minor_words () -. before in
  (* fixed slack: the loop body itself is alloc-free; allow a few words
     for instrumentation noise, not a per-event budget *)
  Alcotest.(check bool)
    (Printf.sprintf "500k metric events allocated %.0f minor words" used)
    true (used <= 256.0)

(* --- snapshot determinism across pool widths --- *)

let render_at_jobs jobs render =
  Pool.set_jobs jobs;
  let out = render () in
  Pool.set_jobs (Pool.default_jobs ());
  out

let test_snapshots_deterministic_vs_jobs () =
  let at1 = render_at_jobs 1 Experiments.Service.canonical_metrics in
  let at8 = render_at_jobs 8 Experiments.Service.canonical_metrics in
  Alcotest.(check bool) "metrics stream byte-identical at -j 1 and -j 8" true
    (String.equal at1 at8)

let test_metrics_match_fixture () =
  let path =
    let f = "fixtures/service_metrics_1k.jsonl" in
    if Sys.file_exists f then f else Filename.concat "test" f
  in
  let ic = open_in_bin path in
  let golden = really_input_string ic (in_channel_length ic) in
  close_in ic;
  let fresh = Experiments.Service.canonical_metrics () in
  Alcotest.(check bool)
    "fresh metrics stream byte-identical to committed fixture (regenerate \
     with test/gen_fixtures.exe after intentional changes)"
    true
    (String.equal golden fresh)

let test_verify_sweep_deterministic_vs_jobs () =
  let render () = Experiments.Verify.to_string ~metrics:true () in
  let at1 = render_at_jobs 1 render in
  let at8 = render_at_jobs 8 render in
  Alcotest.(check bool) "verify metrics byte-identical at -j 1 and -j 8" true
    (String.equal at1 at8)

(* --- export formats --- *)

let test_snapshot_line_shape () =
  let r = Registry.create () in
  let c = Registry.counter r "a/c" in
  Registry.probe r "a/p" (fun () -> 7);
  let h = Registry.histogram r "a/h-ns" in
  Registry.add c 5;
  Registry.observe h 10;
  Registry.observe h 1000;
  let line = Export.snapshot_line ~t:0.25 r in
  Alcotest.(check bool) "starts with the timestamp" true
    (String.length line > 10 && String.sub line 0 10 = {|{"t":0.25,|});
  List.iter
    (fun key ->
      Alcotest.(check bool) (Printf.sprintf "line mentions %s" key) true
        (Astring.String.is_infix ~affix:key line))
    [
      {|"a/c":5|}; {|"a/p":7|}; {|"a/h-ns/count":2|}; {|"a/h-ns/sum":1010|};
      {|"a/h-ns/p50":10|};
    ]

let test_prometheus_shape () =
  let r = Registry.create () in
  let c = Registry.counter r "svc/cache-hits" in
  Registry.add c 3;
  let h = Registry.histogram r "svc/latency-ns" in
  Registry.observe h 12;
  let text = Export.prometheus r in
  List.iter
    (fun affix ->
      Alcotest.(check bool) (Printf.sprintf "prometheus has %S" affix) true
        (Astring.String.is_infix ~affix text))
    [
      "# TYPE kar_svc_cache_hits counter";
      "kar_svc_cache_hits 3";
      "# TYPE kar_svc_latency_ns histogram";
      {|kar_svc_latency_ns_bucket{le="12"} 1|};
      {|kar_svc_latency_ns_bucket{le="+Inf"} 1|};
      "kar_svc_latency_ns_sum 12";
      "kar_svc_latency_ns_count 1";
    ]

let test_summary_smoke () =
  let r = Registry.create () in
  let c = Registry.counter r "a/c" in
  Registry.add c 9;
  let h = Registry.histogram r "a/h-ns" in
  for i = 1 to 100 do Registry.observe h (i * i) done;
  let s = Export.summary r in
  List.iter
    (fun affix ->
      Alcotest.(check bool) (Printf.sprintf "summary has %S" affix) true
        (Astring.String.is_infix ~affix s))
    [ "a/c"; "a/h-ns"; "p50"; "p99" ]

(* --- span ring --- *)

let test_span_ring_wraps () =
  let s = Span.create ~capacity:4 () in
  for i = 1 to 6 do
    Span.record s Span.Plan_compile ~t0:(float_of_int i)
      ~t1:(float_of_int i +. 0.5) ~detail:i
  done;
  Alcotest.(check int) "recorded counts every span" 6 (Span.recorded s);
  Alcotest.(check int) "two spans overwritten" 2 (Span.overwritten s);
  let kept = Span.contents s in
  Alcotest.(check (list int)) "oldest-first retained details" [ 3; 4; 5; 6 ]
    (List.map (fun sp -> sp.Span.detail) kept);
  let sp = List.hd kept in
  Alcotest.(check bool) "timestamps round-trip exactly" true
    (sp.Span.t0 = 3.0 && sp.Span.t1 = 3.5)

let test_span_jsonl () =
  let s = Span.create ~capacity:4 () in
  Span.record s Span.Epoch_invalidate ~t0:0.125 ~t1:0.125 ~detail:2;
  match Span.contents s with
  | [ sp ] ->
    let line = Span.span_to_jsonl sp in
    List.iter
      (fun affix ->
        Alcotest.(check bool) (Printf.sprintf "span jsonl has %S" affix) true
          (Astring.String.is_infix ~affix line))
      [ {|"span":"epoch-invalidate"|}; {|"t0":0.125|}; {|"detail":2|} ]
  | _ -> Alcotest.fail "expected exactly one span"

let () =
  let t name f = Alcotest.test_case name `Quick f in
  Alcotest.run "obs"
    [
      ( "buckets",
        [
          t "values 0..15 exact" test_small_values_exact;
          t "powers of two are bucket floors" test_powers_of_two_are_bucket_floors;
          t "buckets tile the range" test_bounds_partition;
          t "relative width <= 1/8" test_bucket_relative_width;
        ] );
      ( "quantiles",
        [ QCheck_alcotest.to_alcotest test_quantile_within_one_bucket ] );
      ( "merge",
        [
          t "order independent" test_merge_order_independent;
          t "associative" test_merge_associative;
          t "shards copy the schema" test_shards_share_schema;
        ] );
      ("alloc", [ t "hot path is zero-alloc" test_hot_path_zero_alloc ]);
      ( "determinism",
        [
          t "snapshots at -j1 = -j8" test_snapshots_deterministic_vs_jobs;
          t "snapshots match fixture" test_metrics_match_fixture;
          t "verify sweep at -j1 = -j8" test_verify_sweep_deterministic_vs_jobs;
        ] );
      ( "export",
        [
          t "snapshot line shape" test_snapshot_line_shape;
          t "prometheus shape" test_prometheus_shape;
          t "summary smoke" test_summary_smoke;
        ] );
      ( "spans",
        [ t "ring wraps" test_span_ring_wraps; t "jsonl shape" test_span_jsonl ]
      );
    ]
