(* The plan compiler and the exhaustive k-failure resilience verifier.

   The compiler is pinned to the data plane by a differential suite: for
   every core switch of both evaluation topologies and every (live-port
   mask, input port, deflected) triple — and over qcheck-random plans —
   the compiled action must agree with Kar.Policy.decide on the packed
   fast path.  The verifier's verdicts are pinned to the simulator: k=1
   verdicts are checked against the empirical invariants sweep
   (directionally: adversarial Guaranteed implies empirical delivery;
   adversarial no-delivery implies empirical zero delivery), and refuted
   verdicts replay through Netsim.Engine to reproduce the predicted
   violation.  The golden fixture pins the whole net15 k<=2 verdict table
   byte-for-byte at any -j. *)

module Graph = Topo.Graph
module Nets = Topo.Nets
module Compiler = Kar_verify.Compiler
module Verifier = Kar_verify.Verifier
module Counterexample = Kar_verify.Counterexample
module Verify = Experiments.Verify

let nip = Kar.Policy.Not_input_port

(* --- differential: compiled table vs Policy.decide --- *)

let port_states g v ~mask =
  Array.init (Graph.degree g v) (fun p ->
      {
        Kar.Policy.up = mask land (1 lsl p) <> 0;
        to_host = not (Graph.is_core g (fst (Graph.peer g v p)));
      })

(* One compiled cell vs the packed decision.  Deterministic actions are
   checked with a single decide call; deflection candidate sets are
   checked by membership over 32 seeded draws plus the structural facts
   every candidate must satisfy (in range, live link). *)
let check_cell ~what st ~policy ~ports ~mask ~in_port ~deflected =
  let computed = st.Compiler.primary in
  let decide rng =
    Kar.Policy.decide policy ~computed ~in_port ~deflected ~ports rng
  in
  match Compiler.action_of st ~mask ~in_port ~deflected with
  | Compiler.Forward p ->
    let c = decide (Util.Prng.of_int 7) in
    Alcotest.(check int)
      (what ^ ": forward port agrees")
      p (Kar.Policy.code_port c);
    Alcotest.(check bool)
      (what ^ ": forward keeps deflected flag")
      deflected
      (Kar.Policy.code_deflected c)
  | Compiler.Drop ->
    let c = decide (Util.Prng.of_int 7) in
    Alcotest.(check int) (what ^ ": drop agrees") (-1) (Kar.Policy.code_port c)
  | Compiler.Deflect m ->
    Alcotest.(check bool) (what ^ ": candidate set non-empty") true (m <> 0);
    for p = 0 to st.Compiler.degree - 1 do
      if m land (1 lsl p) <> 0 then
        Alcotest.(check bool)
          (Printf.sprintf "%s: candidate %d is live" what p)
          true
          (mask land (1 lsl p) <> 0)
    done;
    for seed = 0 to 31 do
      let c = decide (Util.Prng.of_int seed) in
      let p = Kar.Policy.code_port c in
      Alcotest.(check bool)
        (Printf.sprintf "%s: draw %d lands in candidate set" what p)
        true
        (p >= 0 && m land (1 lsl p) <> 0);
      Alcotest.(check bool)
        (what ^ ": draw sets deflected")
        true
        (Kar.Policy.code_deflected c)
    done

let exhaustive_differential (sc : Nets.scenario) ~name () =
  let g = sc.Nets.graph in
  let plan = Kar.Controller.scenario_plan sc Kar.Controller.Full in
  List.iter
    (fun policy ->
      let t = Compiler.compile g ~plan ~policy in
      List.iter
        (fun v ->
          let st = Compiler.table_exn t v in
          for mask = 0 to Compiler.full_mask st do
            let ports = port_states g v ~mask in
            for in_port = -1 to st.Compiler.degree - 1 do
              List.iter
                (fun deflected ->
                  let what =
                    Printf.sprintf "%s %s sw%d mask=%d in=%d defl=%b" name
                      (Kar.Policy.to_string policy)
                      st.Compiler.switch_id mask in_port deflected
                  in
                  check_cell ~what st ~policy ~ports ~mask ~in_port ~deflected)
                [ false; true ]
            done
          done)
        (Graph.core_nodes g))
    Kar.Policy.all

(* qcheck: random plans (any pair, any protection level, any policy) x
   random cells still agree with the packed fast path. *)
let random_plan_differential =
  QCheck.Test.make ~count:150 ~name:"random plan x mask x cell agrees with decide"
    QCheck.(quad small_nat small_nat small_nat (int_bound 1000))
    (fun (pair_ix, level_ix, policy_ix, cell_seed) ->
      let g = Nets.net15.Nets.graph in
      let edges = Array.of_list (Graph.edge_nodes g) in
      let n = Array.length edges in
      let src = edges.(pair_ix mod n) in
      let dst = edges.((pair_ix / n) mod n) in
      QCheck.assume (src <> dst);
      let level =
        List.nth Kar.Controller.all_levels
          (level_ix mod List.length Kar.Controller.all_levels)
      in
      let policy =
        List.nth Kar.Policy.all (policy_ix mod List.length Kar.Policy.all)
      in
      let plan = Kar.Controller.protected_route g ~src ~dst ~level in
      let t = Compiler.compile g ~plan ~policy in
      let cores = Array.of_list (Graph.core_nodes g) in
      let rng = Util.Prng.of_int cell_seed in
      let v = cores.(Util.Prng.int rng (Array.length cores)) in
      let st = Compiler.table_exn t v in
      let mask = Util.Prng.int rng (Compiler.full_mask st + 1) in
      let in_port = Util.Prng.int rng (st.Compiler.degree + 1) - 1 in
      let deflected = Util.Prng.int rng 2 = 1 in
      let ports = port_states g v ~mask in
      check_cell ~what:"random" st ~policy ~ports ~mask ~in_port ~deflected;
      true)

(* --- empirical replay harness (mirrors Invariants.run_case) --- *)

let empirical g ~plan ~policy ~src ~dst ~failed ~packets ~seed =
  let engine = Netsim.Engine.create () in
  let net = Netsim.Net.create ~graph:g ~engine () in
  let protected_switches =
    List.map (fun r -> r.Rns.modulus) plan.Kar.Route.residues
  in
  let recorder = Trace.Recorder.create ~protected_switches () in
  Netsim.Net.set_recorder net (Some recorder);
  Netsim.Karnet.install_switches ~plan net ~policy ~seed;
  let cache = Kar.Controller.create_cache g in
  List.iter
    (fun v ->
      Netsim.Karnet.install_edge net v
        ~reencode:(fun (p : Netsim.Packet.t) ->
          Kar.Controller.reencode cache ~at:v ~dst:(Netsim.Packet.dst p))
        ~receive:(fun _ _ -> ())
        ())
    (Graph.edge_nodes g);
  List.iter (fun l -> Netsim.Net.fail_link net l) failed;
  for i = 0 to packets - 1 do
    ignore
      (Netsim.Engine.schedule_at engine
         (float_of_int i *. 1e-3)
         (fun () ->
           let packet =
             Netsim.Packet.make
               ~uid:(Netsim.Net.fresh_uid net)
               ~src ~dst ~size_bytes:512 ~route_id:plan.Kar.Route.route_id
               ~born:(Netsim.Engine.now engine) Netsim.Packet.Raw
           in
           Netsim.Net.inject net ~at:src packet))
  done;
  Netsim.Engine.run engine;
  ((Netsim.Net.stats net).Netsim.Net.delivered, Trace.Recorder.contents recorder)

(* --- k=1 agreement with the empirical invariants sweep ---

   Adversarial verdicts are directional w.r.t. randomized simulation:
   Guaranteed means every resolution of the deflection draws delivers, so
   the simulator must deliver everything cleanly; no-delivery (Loop or
   Blackhole) means no resolution delivers, so the simulator must deliver
   nothing.  Policy_dependent constrains neither direction (the verifier's
   adversary can force failing draw sequences that have probability ~0 in
   the seeded simulation). *)

let test_k1_agreement () =
  let cases = Experiments.Invariants.run () in
  let scenarios = [ ("net15", Nets.net15); ("rnp28", Nets.rnp28) ] in
  let instances = Hashtbl.create 8 in
  let instance_of topology policy =
    match Hashtbl.find_opt instances (topology, policy) with
    | Some i -> i
    | None ->
      let sc = List.assoc topology scenarios in
      let plan = Kar.Controller.scenario_plan sc Kar.Controller.Full in
      let i =
        Verifier.prepare sc.Nets.graph ~plan ~policy ~src:sc.Nets.ingress
          ~dst:sc.Nets.egress ()
      in
      Hashtbl.add instances (topology, policy) i;
      i
  in
  let checked = ref 0 in
  List.iter
    (fun (c : Experiments.Invariants.case) ->
      if
        c.Experiments.Invariants.level = Kar.Controller.Full
        && (c.Experiments.Invariants.policy = Kar.Policy.Any_valid_port
           || c.Experiments.Invariants.policy = nip)
      then begin
        let sc = List.assoc c.Experiments.Invariants.topology scenarios in
        let g = sc.Nets.graph in
        let link =
          match
            String.split_on_char '-' c.Experiments.Invariants.failure
          with
          | [ a; b ] ->
            let label s = int_of_string (String.sub s 2 (String.length s - 2)) in
            Graph.link_between_labels g (label a) (label b)
          | _ -> Alcotest.failf "unparsable failure %s" c.Experiments.Invariants.failure
        in
        let inst =
          instance_of c.Experiments.Invariants.topology
            c.Experiments.Invariants.policy
        in
        let cls, outcome = Verifier.verify inst ~failed:[ link ] in
        incr checked;
        if cls = Verifier.Guaranteed then begin
          Alcotest.(check int)
            (Printf.sprintf "%s %s %s: Guaranteed => all delivered"
               c.Experiments.Invariants.topology
               c.Experiments.Invariants.failure
               (Kar.Policy.to_string c.Experiments.Invariants.policy))
            c.Experiments.Invariants.packets
            c.Experiments.Invariants.delivered;
          Alcotest.(check int) "Guaranteed => no violations" 0
            (List.length c.Experiments.Invariants.violations)
        end;
        if not outcome.Verifier.can_deliver then
          Alcotest.(check int)
            (Printf.sprintf "%s %s: no-delivery verdict => nothing delivered"
               c.Experiments.Invariants.topology
               c.Experiments.Invariants.failure)
            0 c.Experiments.Invariants.delivered
      end)
    cases;
  (* both topologies, every core link, two policies *)
  Alcotest.(check bool) "agreement covered the sweep" true (!checked >= 120)

(* --- full-protection single-failure claim, decided ---

   The paper's Fig. 5/7 claim at k=1, in adversarial form: under full
   protection every single core-link failure leaves delivery at least
   possible (no Loop/Blackhole/Disconnected verdicts at k=1) for every
   edge pair of both topologies. *)

let test_k1_no_refutation_of_possibility () =
  List.iter
    (fun r ->
      List.iter
        (fun (p : Verify.pair_report) ->
          let row = p.Verify.per_k.(0) in
          let count cls =
            let rec index i = function
              | [] -> assert false
              | c :: rest -> if c = cls then i else index (i + 1) rest
            in
            row.(index 0 Verifier.all_classifications)
          in
          List.iter
            (fun cls ->
              Alcotest.(check int)
                (Printf.sprintf "%s %d->%d k=1 %s" r.Verify.topology
                   p.Verify.src p.Verify.dst
                   (Verifier.classification_to_string cls))
                0 (count cls))
            [ Verifier.Loop; Verifier.Blackhole; Verifier.Disconnected ];
          Alcotest.(check bool)
            (Printf.sprintf "%s %d->%d k=1 angelic" r.Verify.topology
               p.Verify.src p.Verify.dst)
            true
            (p.Verify.ang_k >= 1))
        r.Verify.pairs)
    (Verify.run ())

(* --- counterexample replay ---

   Every counterexample the net15 k<=2 sweep emits must machine-check
   (delivery refuted on a structurally clean trace), and the no-delivery
   classes (Loop/Blackhole) must reproduce empirically: simulating the
   same plan under the same failure set delivers nothing and the live
   trace itself fails the delivery invariant. *)

let test_counterexamples_machine_check () =
  let r = Verify.run_topology ~name:"net15" Nets.net15 ~max_k:2 ~policy:nip () in
  Alcotest.(check bool) "at least one counterexample" true
    (r.Verify.counterexamples <> []);
  List.iter
    (fun (cx : Verify.counterexample) ->
      let what = Verifier.classification_to_string cx.Verify.cx_class in
      Alcotest.(check bool)
        (what ^ ": delivery refuted")
        true
        (Counterexample.refutes cx.Verify.cx_violations);
      Alcotest.(check bool)
        (what ^ ": trace structurally clean")
        true
        (Counterexample.well_formed cx.Verify.cx_violations);
      (* the trace round-trips through the on-disk JSONL format *)
      List.iter
        (fun e ->
          match Trace.Event.of_jsonl (Trace.Event.to_jsonl e) with
          | Ok e' ->
            Alcotest.(check bool) (what ^ ": jsonl roundtrip") true (e = e')
          | Error m -> Alcotest.failf "%s: jsonl parse failed: %s" what m)
        cx.Verify.cx_events;
      (* and through the compact binary format, losslessly and in order *)
      (match
         Trace.Binary.decode_string
           (Trace.Binary.encode_events cx.Verify.cx_events)
       with
       | Ok events ->
         Alcotest.(check bool)
           (what ^ ": binary roundtrip")
           true
           (events = cx.Verify.cx_events)
       | Error m -> Alcotest.failf "%s: binary decode failed: %s" what m))
    r.Verify.counterexamples

let test_no_delivery_verdicts_replay_empirically () =
  let g = Nets.net15.Nets.graph in
  let links = Verify.core_links g in
  let pairs =
    List.concat_map
      (fun src ->
        List.filter_map
          (fun dst -> if src <> dst then Some (src, dst) else None)
          (Graph.edge_nodes g))
      (Graph.edge_nodes g)
  in
  let replayed = ref 0 in
  List.iter
    (fun (src, dst) ->
      let plan =
        Kar.Controller.protected_route g ~src ~dst ~level:Kar.Controller.Full
      in
      let inst = Verifier.prepare g ~plan ~policy:nip ~src ~dst () in
      List.iter
        (fun failed ->
          let _, outcome = Verifier.verify inst ~failed in
          if not outcome.Verifier.can_deliver then begin
            incr replayed;
            let delivered, events =
              empirical g ~plan ~policy:nip ~src ~dst ~failed ~packets:4
                ~seed:11
            in
            let what =
              Printf.sprintf "%d->%d failed=%s" (Graph.label g src)
                (Graph.label g dst)
                (String.concat ","
                   (List.map string_of_int (failed :> int list)))
            in
            Alcotest.(check int)
              (what ^ ": engine delivers nothing")
              0 delivered;
            let violations =
              Trace.Invariant.check ~expect_delivery:true ~drained:true events
            in
            Alcotest.(check bool)
              (what ^ ": live trace fails the delivery invariant")
              true
              (List.exists
                 (fun (v : Trace.Invariant.violation) ->
                   v.Trace.Invariant.invariant = "delivery")
                 violations)
          end)
        (Verify.failure_sets links ~k:2))
    pairs;
  (* the sweep currently refutes delivery for at least one k=2 set *)
  Alcotest.(check bool) "replayed at least one no-delivery verdict" true
    (!replayed >= 1)

(* --- golden fixture --- *)

let fixture_path = "fixtures/verify_net15_k2.jsonl"

let lines_at_jobs jobs =
  Util.Pool.set_jobs jobs;
  let out = Verify.fixture_lines () in
  Util.Pool.set_jobs (Util.Pool.default_jobs ());
  out

let test_fixture_jobs_invariant () =
  let at1 = lines_at_jobs 1 and at8 = lines_at_jobs 8 in
  Alcotest.(check (list string)) "fixture byte-identical at -j 1 and -j 8"
    at1 at8

let test_fixture_matches_disk () =
  let ic = open_in fixture_path in
  let n = in_channel_length ic in
  let disk = really_input_string ic n in
  close_in ic;
  let fresh = String.concat "\n" (Verify.fixture_lines ()) ^ "\n" in
  Alcotest.(check string) "verify_net15_k2.jsonl is current" disk fresh

(* --- compiled-table structure --- *)

let test_compiler_structure () =
  let sc = Nets.net15 in
  let g = sc.Nets.graph in
  let plan = Kar.Controller.scenario_plan sc Kar.Controller.Full in
  let t = Compiler.compile g ~plan ~policy:nip in
  List.iter
    (fun v ->
      let st = Compiler.table_exn t v in
      Alcotest.(check int) "switch_id is the label" (Graph.label g v)
        st.Compiler.switch_id;
      Alcotest.(check int) "primary is the modulo answer"
        (Kar.Route.cached_port plan ~route_id:plan.Kar.Route.route_id
           ~switch_id:st.Compiler.switch_id)
        st.Compiler.primary;
      (* all-ports-live, fresh packet: a protected on-path switch forwards
         out its planned residue port *)
      match
        Compiler.action_of st ~mask:(Compiler.full_mask st) ~in_port:(-1)
          ~deflected:false
      with
      | Compiler.Forward p ->
        Alcotest.(check bool) "forward port within degree" true
          (p >= 0 && p < st.Compiler.degree)
      | Compiler.Deflect _ | Compiler.Drop ->
        (* off-path switches may legitimately deflect or drop a fresh
           packet: their modulo answer is arbitrary *)
        Alcotest.(check bool) "off the plan" true
          (st.Compiler.primary >= st.Compiler.degree
          || st.Compiler.primary < 0
          || not (Compiler.is_protected t st.Compiler.switch_id)))
    (Graph.core_nodes g);
  List.iter
    (fun r ->
      Alcotest.(check bool)
        (Printf.sprintf "residue switch %d 'protected'" r.Rns.modulus)
        true
        (Compiler.is_protected t r.Rns.modulus))
    plan.Kar.Route.residues

let () =
  Alcotest.run "verify"
    [
      ( "compiler",
        [
          Alcotest.test_case "structure (net15 full plan)" `Quick
            test_compiler_structure;
          Alcotest.test_case "exhaustive differential net15" `Quick
            (exhaustive_differential Nets.net15 ~name:"net15");
          Alcotest.test_case "exhaustive differential rnp28" `Quick
            (exhaustive_differential Nets.rnp28 ~name:"rnp28");
          QCheck_alcotest.to_alcotest random_plan_differential;
        ] );
      ( "verifier",
        [
          Alcotest.test_case "k=1 agreement with invariants sweep" `Quick
            test_k1_agreement;
          Alcotest.test_case "k=1 keeps delivery possible (both topologies)"
            `Quick test_k1_no_refutation_of_possibility;
        ] );
      ( "counterexamples",
        [
          Alcotest.test_case "machine-checked (net15 k<=2)" `Quick
            test_counterexamples_machine_check;
          Alcotest.test_case "no-delivery verdicts replay empirically" `Quick
            test_no_delivery_verdicts_replay_empirically;
        ] );
      ( "fixture",
        [
          Alcotest.test_case "byte-identical at -j 1 and -j 8" `Quick
            test_fixture_jobs_invariant;
          Alcotest.test_case "matches the checked-in file" `Quick
            test_fixture_matches_disk;
        ] );
    ]
