(* Tests for the failure-scenario engine (lib/scenario): spec grammar
   round-trips, well-formedness of generated streams, the adversarial
   scheduler's dependency targeting and connectivity invariant, driver
   instrumentation, and byte-identical determinism of churn runs across
   pool widths and region counts. *)

module Graph = Topo.Graph
module Nets = Topo.Nets
module Event = Kar_scenario.Event
module Spec = Kar_scenario.Spec
module Gen = Kar_scenario.Gen
module Driver = Kar_scenario.Driver
module Registry = Kar_obs.Registry
module Churn = Experiments.Churn
module Pool = Util.Pool

let net15 = Nets.net15
let rnp28 = Nets.rnp28

let generate_exn g ~horizon ?pairs spec =
  match Gen.generate g ~horizon ?pairs spec with
  | Ok evs -> evs
  | Error e -> Alcotest.failf "generate: %s" e

(* --- spec grammar --- *)

let test_spec_round_trip () =
  List.iter
    (fun s ->
      match Spec.parse s with
      | Error e -> Alcotest.failf "parse %S: %s" s e
      | Ok spec ->
        Alcotest.(check string) (Printf.sprintf "%S round-trips" s) s
          (Spec.to_string spec))
    [
      "flap:links=4,period=0.5,duty=0.4,seed=7";
      "regional:groups=3,mtbf=0.6,mttr=0.25,seed=7";
      "adversarial:k=2,period=0.5,hold=0.45,level=full";
      "events:fail@0.5=7-13,repair@0.8=7-13,fail@1.2=#12";
    ]

let test_spec_defaults () =
  (* a bare model name parses to the documented defaults *)
  (match Spec.parse "flap" with
   | Ok (Spec.Flap { links = 4; period = 0.5; duty = 0.4; seed = 7 }) -> ()
   | _ -> Alcotest.fail "bare flap should parse to its defaults");
  match Spec.parse "adversarial:k=3" with
  | Ok (Spec.Adversarial { k = 3; level = Kar.Controller.Full; _ }) -> ()
  | _ -> Alcotest.fail "adversarial:k=3 should keep the other defaults"

let test_spec_errors () =
  List.iter
    (fun s ->
      match Spec.parse s with
      | Ok _ -> Alcotest.failf "%S should not parse" s
      | Error _ -> ())
    [
      "meteor:strike=1";
      "flap:links=0";
      "flap:duty=1.5";
      "flap:period=zero";
      "regional:mttr=-1";
      "adversarial:level=max";
      "events:";
      "events:explode@1=#0";
      "events:fail@1=7:13";
    ]

(* --- stream well-formedness --- *)

let alternates_per_link evs =
  let state = Hashtbl.create 16 in
  List.for_all
    (fun (e : Event.t) ->
      let down = try Hashtbl.find state e.Event.link with Not_found -> false in
      let ok =
        match e.Event.action with Event.Fail -> not down | Event.Repair -> down
      in
      Hashtbl.replace state e.Event.link (e.Event.action = Event.Fail);
      ok)
    evs

let test_flap_well_formed () =
  let g = net15.Nets.graph in
  let spec = Spec.Flap { links = 3; period = 0.4; duty = 0.5; seed = 7 } in
  let evs = generate_exn g ~horizon:2.0 spec in
  Alcotest.(check bool) "stream is non-empty" true (evs <> []);
  Alcotest.(check bool) "every event is before the horizon" true
    (List.for_all (fun (e : Event.t) -> e.Event.at < 2.0) evs);
  Alcotest.(check bool) "normalized order" true
    (List.equal (fun a b -> Event.compare a b = 0) evs (Event.normalize evs));
  Alcotest.(check bool) "per link, fail and repair strictly alternate" true
    (alternates_per_link evs);
  Alcotest.(check bool) "only core-core links flap" true
    (List.for_all
       (fun (e : Event.t) ->
         let l = Graph.link g e.Event.link in
         Graph.is_core g l.Graph.ep0.Graph.node
         && Graph.is_core g l.Graph.ep1.Graph.node)
       evs)

let test_flap_seeded () =
  let g = rnp28.Nets.graph in
  let gen seed =
    generate_exn g ~horizon:2.0
      (Spec.Flap { links = 4; period = 0.5; duty = 0.4; seed })
  in
  Alcotest.(check bool) "same seed reproduces the stream" true
    (gen 7 = gen 7);
  Alcotest.(check bool) "different seeds give different streams" true
    (gen 7 <> gen 8)

let test_regional_srlg () =
  let g = rnp28.Nets.graph in
  let groups = 3 in
  let evs =
    generate_exn g ~horizon:3.0
      (Spec.Regional { groups; mtbf = 0.4; mttr = 0.2; seed = 7 })
  in
  Alcotest.(check bool) "stream is non-empty" true (evs <> []);
  Alcotest.(check bool) "alternates per link" true (alternates_per_link evs);
  (* shared-risk groups: every failed link is internal to one region of
     the same partition the generator used *)
  let p = Topo.Partition.make g ~regions:groups in
  Alcotest.(check bool) "every event link is intra-region" true
    (List.for_all
       (fun (e : Event.t) ->
         let l = Graph.link g e.Event.link in
         p.Topo.Partition.region_of.(l.Graph.ep0.Graph.node)
         = p.Topo.Partition.region_of.(l.Graph.ep1.Graph.node))
       evs);
  (* a regional outage takes a whole group down at one instant *)
  let fails_at t =
    List.filter
      (fun (e : Event.t) -> e.Event.action = Event.Fail && e.Event.at = t)
      evs
  in
  match List.find_opt (fun (e : Event.t) -> e.Event.action = Event.Fail) evs with
  | None -> Alcotest.fail "expected at least one failure"
  | Some first ->
    Alcotest.(check bool) "first outage hits more than one link" true
      (List.length (fails_at first.Event.at) > 1)

(* --- the adversarial scheduler --- *)

let test_adversarial_targets_dependencies () =
  let g = rnp28.Nets.graph in
  let src = rnp28.Nets.ingress and dst = rnp28.Nets.egress in
  let spec =
    Spec.Adversarial
      { k = 2; period = 0.5; hold = 0.45; level = Kar.Controller.Unprotected }
  in
  let evs = generate_exn g ~horizon:3.0 ~pairs:[ (src, dst) ] spec in
  Alcotest.(check bool) "stream is non-empty" true (evs <> []);
  (* at unprotected level the dependency set of the tracked pair is
     computable here with public APIs: the base plan's residue links, its
     primary path, and the best detour around each primary link *)
  let plan = Kar.Controller.route g ~src ~dst ~protection:[] in
  let ppath = Topo.Paths.path_links g plan.Kar.Route.core_path in
  let detours =
    List.concat_map
      (fun dead ->
        let usable (l : Graph.link) = l.Graph.id <> dead in
        match Kar.Controller.route ~usable g ~src ~dst ~protection:[] with
        | exception Invalid_argument _ -> []
        | alt -> Topo.Paths.path_links g alt.Kar.Route.core_path)
      ppath
  in
  let deps = Gen.plan_links g plan @ ppath @ detours in
  let first =
    List.find (fun (e : Event.t) -> e.Event.action = Event.Fail) evs
  in
  Alcotest.(check bool)
    "first target is in the tracked pair's dependency set" true
    (List.mem first.Event.link deps)

let test_adversarial_never_disconnects () =
  let g = rnp28.Nets.graph in
  let src = rnp28.Nets.ingress and dst = rnp28.Nets.egress in
  let spec =
    Spec.Adversarial
      { k = 3; period = 0.4; hold = 0.35; level = Kar.Controller.Full }
  in
  let evs = generate_exn g ~horizon:3.0 ~pairs:[ (src, dst) ] spec in
  Alcotest.(check bool) "stream is non-empty" true (evs <> []);
  List.iter
    (fun (e : Event.t) ->
      let downs = Event.links_down evs ~at:e.Event.at in
      let usable (l : Graph.link) = not (List.mem l.Graph.id downs) in
      Alcotest.(check bool)
        (Printf.sprintf "pair still connected just after t=%g" e.Event.at)
        true
        (Topo.Paths.shortest_path g ~usable src dst <> None))
    evs

(* --- explicit events and the degenerate CLI path --- *)

let test_events_to_failures () =
  let g = net15.Nets.graph in
  let link = net15.Nets.failures |> List.hd |> fun fc -> fc.Nets.link in
  (* the schedule kar_serve compiles repeatable --fail-at/--repair-at
     flags into: a degenerate explicit-events scenario *)
  let spec =
    Spec.Events
      [
        (0.5, Event.Fail, Spec.Id link);
        (0.8, Event.Repair, Spec.Id link);
        (1.2, Event.Fail, Spec.Id link);
      ]
  in
  let evs = generate_exn g ~horizon:2.0 spec in
  Alcotest.(check bool) "to_failures matches the hand-built schedule" true
    (Event.to_failures evs
    = [ (0.5, `Fail link); (0.8, `Repair link); (1.2, `Fail link) ]);
  (* endpoint-label references resolve to the same link ids *)
  let l = Graph.link g link in
  let a = Graph.label g l.Graph.ep0.Graph.node
  and b = Graph.label g l.Graph.ep1.Graph.node in
  let evs' =
    generate_exn g ~horizon:2.0
      (Spec.Events [ (0.5, Event.Fail, Spec.Between (a, b)) ])
  in
  Alcotest.(check bool) "A-B resolves to the same link as #ID" true
    (match evs' with
     | [ e ] -> e.Event.link = link
     | _ -> false);
  (* unknown links are reported, not silently dropped *)
  match Gen.generate g ~horizon:2.0 (Spec.Events [ (0.1, Event.Fail, Spec.Id 9999) ]) with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "out-of-range link id should be an error"

(* --- driver instrumentation --- *)

let test_driver_counters () =
  let g = net15.Nets.graph in
  let engine = Netsim.Engine.create () in
  let net = Netsim.Net.create ~graph:g ~engine () in
  let evs =
    Event.normalize
      [
        { Event.at = 0.10; action = Event.Fail; link = 0 };
        { Event.at = 0.12; action = Event.Fail; link = 0 };
        (* no-op: already down *)
        { Event.at = 0.15; action = Event.Fail; link = 1 };
        { Event.at = 0.20; action = Event.Repair; link = 0 };
        { Event.at = 0.25; action = Event.Repair; link = 1 };
      ]
  in
  Driver.arm net evs;
  Netsim.Net.run_until net 0.5;
  let r = Netsim.Net.registry net in
  Alcotest.(check int) "all events delivered" 5 (Registry.read r "scenario/events");
  Alcotest.(check int) "effective down transitions" 2
    (Registry.read r "scenario/flaps");
  Alcotest.(check int) "effective up transitions" 2
    (Registry.read r "scenario/repairs");
  Alcotest.(check int) "all links back up" 0
    (Registry.read r "scenario/links-down");
  Alcotest.(check int) "peak concurrent outages" 2
    (Registry.read r "scenario/max-links-down")

(* --- determinism: pool width and region count --- *)

let at_jobs jobs f =
  Pool.set_jobs jobs;
  let out = f () in
  Pool.set_jobs (Pool.default_jobs ());
  out

let test_generation_deterministic_vs_jobs () =
  let gen () =
    List.map
      (fun sch -> Churn.events_for rnp28 ~horizon:2.0 sch)
      [ `Flap; `Regional; `Adversarial ]
  in
  Alcotest.(check bool) "event streams byte-identical at -j 1 and -j 8" true
    (at_jobs 1 gen = at_jobs 8 gen)

let trace_of_run sc ~events ~regions =
  let recorder = Trace.Recorder.create ~capacity:(1 lsl 18) () in
  let r =
    Churn.run_data sc ~events ~technique:Churn.Kar ~regions ~recorder
      ~rate_pps:300 ~duration_s:1.5 ~seed:42 ()
  in
  let lines =
    String.concat "\n"
      (List.map Trace.Event.to_jsonl (Trace.Recorder.contents recorder))
  in
  (r, lines)

let test_run_deterministic_vs_regions () =
  let events = Churn.events_for net15 ~horizon:1.5 `Flap in
  let r1, t1 = trace_of_run net15 ~events ~regions:0 in
  let r2, t2 = trace_of_run net15 ~events ~regions:2 in
  Alcotest.(check bool) "data results identical serial vs --regions 2" true
    (r1 = r2);
  Alcotest.(check bool) "flight records byte-identical serial vs --regions 2"
    true
    (String.equal t1 t2);
  Alcotest.(check bool) "the run actually delivered traffic" true
    (r1.Churn.delivered > 0)

let test_run_deterministic_vs_jobs () =
  let events = Churn.events_for net15 ~horizon:1.5 `Flap in
  let run () = trace_of_run net15 ~events ~regions:2 in
  Alcotest.(check bool) "sharded churn run identical at -j 1 and -j 8" true
    (at_jobs 1 run = at_jobs 8 run)

(* --- golden fixture --- *)

let test_fixture_matches () =
  let path =
    let f = "fixtures/churn_net15_flap.jsonl" in
    if Sys.file_exists f then f else Filename.concat "test" f
  in
  let ic = open_in_bin path in
  let golden = really_input_string ic (in_channel_length ic) in
  close_in ic;
  Alcotest.(check bool)
    "canonical churn stream byte-identical to committed fixture (regenerate \
     with test/gen_fixtures.exe after intentional changes)"
    true
    (String.equal golden (Churn.fixture_lines ()))

(* --- the point of the exercise: KAR survives the adversary better --- *)

let test_adversary_hurts_baselines_more () =
  let events = Churn.events_for rnp28 ~horizon:3.0 `Adversarial in
  let run technique =
    Churn.run_data rnp28 ~events ~technique ~rate_pps:300 ~duration_s:3.0
      ~seed:42 ()
  in
  let kar = run Churn.Kar and ff = run Churn.Fast_failover in
  Alcotest.(check bool)
    (Printf.sprintf
       "KAR out-delivers fast failover under the adversarial schedule \
        (%.3f vs %.3f)"
       kar.Churn.delivery_ratio ff.Churn.delivery_ratio)
    true
    (kar.Churn.delivery_ratio > ff.Churn.delivery_ratio +. 0.05)

let () =
  let t name f = Alcotest.test_case name `Quick f in
  Alcotest.run "scenario"
    [
      ( "spec",
        [
          t "round-trips" test_spec_round_trip;
          t "defaults" test_spec_defaults;
          t "errors" test_spec_errors;
        ] );
      ( "streams",
        [
          t "flap well-formed" test_flap_well_formed;
          t "flap seeded" test_flap_seeded;
          t "regional SRLG" test_regional_srlg;
        ] );
      ( "adversarial",
        [
          t "targets dependencies" test_adversarial_targets_dependencies;
          t "never disconnects" test_adversarial_never_disconnects;
          t "hurts baselines more" test_adversary_hurts_baselines_more;
        ] );
      ( "events",
        [ t "degenerate CLI schedule" test_events_to_failures ] );
      ("driver", [ t "counters" test_driver_counters ]);
      ( "determinism",
        [
          t "generation at -j1 = -j8" test_generation_deterministic_vs_jobs;
          t "run serial = --regions 2" test_run_deterministic_vs_regions;
          t "sharded run at -j1 = -j8" test_run_deterministic_vs_jobs;
          t "fixture" test_fixture_matches;
        ] );
    ]
