(* Tests for the packet flight recorder (lib/trace): the ring buffer, the
   JSONL trace format, the invariant checker on hand-crafted violating
   traces, golden-fixture replay, and the differential property that
   Kar.Walk and Netsim.Karnet take identical switch-hop sequences under the
   same seed, plan, policy and failure. *)

module Graph = Topo.Graph
module Nets = Topo.Nets
module Event = Trace.Event
module Recorder = Trace.Recorder
module Invariant = Trace.Invariant

let qtest ?(count = 200) name gen f =
  QCheck_alcotest.to_alcotest (QCheck2.Test.make ~count ~name gen f)

(* --- Recorder: ring buffer semantics --- *)

let rec_event r i =
  ignore
    (Recorder.record r ~vtime:(float_of_int i) ~uid:i ~switch:7 ~in_port:0
       ~out_port:1 ~ttl:(64 - i) Event.Forward)

let test_ring_overwrite () =
  let r = Recorder.create ~capacity:4 () in
  for i = 0 to 5 do rec_event r i done;
  Alcotest.(check int) "recorded" 6 (Recorder.recorded r);
  Alcotest.(check int) "overwritten" 2 (Recorder.overwritten r);
  let seqs = List.map (fun e -> e.Event.seq) (Recorder.contents r) in
  Alcotest.(check (list int)) "oldest first, oldest two gone" [ 2; 3; 4; 5 ] seqs;
  Recorder.clear r;
  Alcotest.(check int) "cleared" 0 (Recorder.recorded r);
  Alcotest.(check (list int)) "empty" []
    (List.map (fun e -> e.Event.seq) (Recorder.contents r))

let test_sink_sees_overwritten () =
  let seen = ref [] in
  let r = Recorder.create ~capacity:2 ~sink:(fun e -> seen := e :: !seen) () in
  for i = 0 to 4 do rec_event r i done;
  Alcotest.(check (list int)) "sink saw every event" [ 0; 1; 2; 3; 4 ]
    (List.rev_map (fun e -> e.Event.seq) !seen)

let test_protected_set () =
  let r = Recorder.create ~protected_switches:[ 7; 13 ] () in
  Alcotest.(check bool) "7 protected" true (Recorder.is_protected r 7);
  Alcotest.(check bool) "11 not" false (Recorder.is_protected r 11);
  Recorder.set_protected r [ 11 ];
  Alcotest.(check bool) "replaced" true
    (Recorder.is_protected r 11 && not (Recorder.is_protected r 7))

(* --- JSONL format --- *)

let actions =
  [ Event.Inject; Event.Forward; Event.Deflect "hp"; Event.Deflect "avp";
    Event.Deflect "nip"; Event.Drive; Event.Deliver; Event.Reencode;
    Event.Drop "link_down"; Event.Drop "queue_full"; Event.Drop "no_route";
    Event.Drop "ttl"; Event.Drop "stranded" ]

let test_jsonl_golden_line () =
  let e =
    { Event.seq = 3; vtime = 0.0025; uid = 1; switch = 13; in_port = 0;
      out_port = 2; ttl = 61; action = Event.Deflect "nip" }
  in
  Alcotest.(check string) "stable on-disk format"
    {|{"seq":3,"t":0.0025,"uid":1,"sw":13,"in":0,"out":2,"ttl":61,"act":"deflect:nip"}|}
    (Event.to_jsonl e)

let prop_jsonl_roundtrip =
  qtest ~count:500 "to_jsonl |> of_jsonl is the identity"
    QCheck2.Gen.(
      tup6 (0 -- 1_000_000) (0 -- 1_000_000) (pair (-1 -- 997) (-1 -- 31))
        (-1 -- 31) (-300 -- 300)
        (0 -- (List.length actions - 1)))
    (fun (seq, vt_q, (switch, in_port), out_port, ttl, ai) ->
      (* quarters are exact in binary and need < 9 significant digits, so
         the %.9g rendering is lossless *)
      let e =
        { Event.seq; vtime = float_of_int vt_q *. 0.25; uid = seq mod 97;
          switch; in_port; out_port; ttl; action = List.nth actions ai }
      in
      Event.of_jsonl (Event.to_jsonl e) = Ok e)

let test_jsonl_rejects_garbage () =
  List.iter
    (fun line ->
      match Event.of_jsonl line with
      | Ok _ -> Alcotest.failf "parsed %S" line
      | Error _ -> ())
    [ ""; "{}"; "not json";
      {|{"seq":1,"t":0,"uid":0,"sw":7,"in":0,"out":1,"ttl":9}|} (* no act *);
      {|{"seq":1,"t":0,"uid":0,"sw":7,"in":0,"out":1,"ttl":9,"act":"warp"}|};
      {|{"seq":x,"t":0,"uid":0,"sw":7,"in":0,"out":1,"ttl":9,"act":"fwd"}|} ]

(* --- Invariant checker on hand-crafted traces --- *)

let ev ?(uid = 0) ?(switch = 7) ?(in_port = 0) ?(out_port = -1) ~seq ~ttl
    action =
  { Event.seq; vtime = float_of_int seq; uid; switch; in_port; out_port; ttl;
    action }

let names vs =
  List.sort_uniq compare (List.map (fun v -> v.Invariant.invariant) vs)

let clean_trace =
  [ ev ~seq:0 ~switch:100 ~in_port:(-1) ~ttl:8 Event.Inject;
    ev ~seq:1 ~switch:7 ~out_port:1 ~ttl:7 Event.Forward;
    ev ~seq:2 ~switch:11 ~out_port:2 ~ttl:6 Event.Forward;
    ev ~seq:3 ~switch:103 ~in_port:1 ~ttl:6 Event.Deliver ]

let test_clean_trace () =
  Alcotest.(check (list string)) "no violations" []
    (names (Invariant.check ~drained:true ~expect_delivery:true clean_trace))

let test_driven_loop_detected () =
  let trace =
    [ ev ~seq:0 ~switch:100 ~in_port:(-1) ~ttl:8 Event.Inject;
      ev ~seq:1 ~switch:7 ~out_port:1 ~ttl:7 Event.Drive;
      ev ~seq:2 ~switch:11 ~out_port:2 ~ttl:6 Event.Forward;
      ev ~seq:3 ~switch:7 ~out_port:1 ~ttl:5 Event.Forward ]
  in
  Alcotest.(check (list string)) "revisit while driven" [ "driven-loop" ]
    (names (Invariant.check trace))

let test_deflect_resets_driven_walk () =
  let trace =
    [ ev ~seq:0 ~switch:100 ~in_port:(-1) ~ttl:8 Event.Inject;
      ev ~seq:1 ~switch:7 ~out_port:1 ~ttl:7 Event.Drive;
      ev ~seq:2 ~switch:11 ~out_port:2 ~ttl:6 (Event.Deflect "nip");
      ev ~seq:3 ~switch:7 ~out_port:1 ~ttl:5 Event.Forward ]
  in
  Alcotest.(check (list string)) "fresh deflection restarts the walk" []
    (names (Invariant.check trace))

let test_conservation_detected () =
  let double_inject =
    ev ~seq:4 ~switch:100 ~in_port:(-1) ~ttl:5 Event.Inject :: clean_trace
  in
  Alcotest.(check (list string)) "two injects" [ "conservation" ]
    (names (Invariant.check double_inject));
  let after_terminal =
    clean_trace @ [ ev ~seq:9 ~switch:11 ~out_port:0 ~ttl:5 Event.Forward ]
  in
  Alcotest.(check (list string)) "event after terminal" [ "conservation" ]
    (names (Invariant.check after_terminal));
  let in_flight =
    [ ev ~seq:0 ~switch:100 ~in_port:(-1) ~ttl:8 Event.Inject;
      ev ~seq:1 ~switch:7 ~out_port:1 ~ttl:7 Event.Forward ]
  in
  Alcotest.(check (list string)) "in flight at drain" [ "conservation" ]
    (names (Invariant.check ~drained:true in_flight));
  Alcotest.(check (list string)) "in flight without drain is fine" []
    (names (Invariant.check in_flight))

let test_ttl_violations_detected () =
  let stuck =
    [ ev ~seq:0 ~switch:100 ~in_port:(-1) ~ttl:8 Event.Inject;
      ev ~seq:1 ~switch:7 ~out_port:1 ~ttl:8 Event.Forward ]
  in
  Alcotest.(check (list string)) "not strictly decreasing" [ "ttl" ]
    (names (Invariant.check stuck));
  let unrepresentable =
    [ ev ~seq:0 ~switch:100 ~in_port:(-1) ~ttl:300 Event.Inject ]
  in
  Alcotest.(check (list string)) "not a Wire.Header ttl" [ "ttl" ]
    (names (Invariant.check unrepresentable))

let test_fifo_violation_detected () =
  (* Two packets through queue (switch 7, port 1): uid 0 sent first but
     arrives last — uid 1 overtook it inside one FIFO channel. *)
  let trace =
    [ ev ~uid:0 ~seq:0 ~switch:100 ~in_port:(-1) ~ttl:8 Event.Inject;
      ev ~uid:1 ~seq:1 ~switch:100 ~in_port:(-1) ~ttl:8 Event.Inject;
      ev ~uid:0 ~seq:2 ~switch:7 ~out_port:1 ~ttl:7 Event.Forward;
      ev ~uid:1 ~seq:3 ~switch:7 ~out_port:1 ~ttl:7 Event.Forward;
      ev ~uid:1 ~seq:4 ~switch:11 ~in_port:0 ~out_port:2 ~ttl:6 Event.Forward;
      ev ~uid:0 ~seq:5 ~switch:11 ~in_port:0 ~out_port:2 ~ttl:6 Event.Forward ]
  in
  Alcotest.(check (list string)) "overtaking detected" [ "fifo" ]
    (names (Invariant.check trace))

let test_delivery_expectation () =
  let dropped =
    [ ev ~seq:0 ~switch:100 ~in_port:(-1) ~ttl:8 Event.Inject;
      ev ~seq:1 ~switch:7 ~ttl:7 (Event.Drop "no_route") ]
  in
  Alcotest.(check (list string)) "drop breaks the delivery claim"
    [ "delivery" ]
    (names (Invariant.check ~expect_delivery:true dropped));
  Alcotest.(check (list string)) "fine when delivery not promised" []
    (names (Invariant.check dropped))

let test_truncated_suffix () =
  (* A stream that lost its Inject to the ring: only valid as a declared
     suffix. *)
  let suffix =
    [ ev ~seq:10 ~switch:7 ~out_port:1 ~ttl:7 Event.Forward;
      ev ~seq:11 ~switch:103 ~in_port:1 ~ttl:6 Event.Deliver ]
  in
  Alcotest.(check (list string)) "suffix accepted when truncated" []
    (names
       (Invariant.check ~truncated:true ~drained:true ~expect_delivery:true
          suffix));
  Alcotest.(check (list string)) "same trace rejected when not truncated"
    [ "conservation" ]
    (names (Invariant.check suffix))

(* --- Traced netsim runs --- *)

let traced_run ?(cache = false) (sc : Nets.scenario) ~link ~level ~policy
    ~packets ~seed =
  let g = sc.Nets.graph in
  let engine = Netsim.Engine.create () in
  let net = Netsim.Net.create ~graph:g ~engine () in
  let plan = Kar.Controller.scenario_plan sc level in
  let recorder =
    Recorder.create
      ~protected_switches:
        (List.map (fun r -> r.Rns.modulus) plan.Kar.Route.residues)
      ()
  in
  Netsim.Net.set_recorder net (Some recorder);
  Netsim.Karnet.install_switches
    ?plan:(if cache then Some plan else None)
    net ~policy ~seed;
  let cache = Kar.Controller.create_cache g in
  List.iter
    (fun v ->
      Netsim.Karnet.install_edge net v
        ~reencode:(fun (p : Netsim.Packet.t) ->
          Kar.Controller.reencode cache ~at:v ~dst:(Netsim.Packet.dst p))
        ~receive:(fun _ _ -> ())
        ())
    (Graph.edge_nodes g);
  Netsim.Net.fail_link net link;
  for i = 0 to packets - 1 do
    ignore
      (Netsim.Engine.schedule_at engine
         (float_of_int i *. 1e-3)
         (fun () ->
           let packet =
             Netsim.Packet.make ~uid:(Netsim.Net.fresh_uid net)
               ~src:sc.Nets.ingress ~dst:sc.Nets.egress ~size_bytes:512
               ~route_id:plan.Kar.Route.route_id
               ~born:(Netsim.Engine.now engine) Netsim.Packet.Raw
           in
           Netsim.Net.inject net ~at:sc.Nets.ingress packet))
  done;
  Netsim.Engine.run engine;
  (net, recorder)

let test_karnet_traced_run () =
  let sc = Nets.fig1_six in
  let fc = List.hd sc.Nets.failures in
  let net, recorder =
    traced_run sc ~link:fc.Nets.link ~level:Kar.Controller.Full
      ~policy:Kar.Policy.Not_input_port ~packets:2 ~seed:7
  in
  let events = Recorder.contents recorder in
  Alcotest.(check bool) "events recorded" true (List.length events > 0);
  Alcotest.(check (list string)) "invariants hold" []
    (names (Invariant.check ~drained:true ~expect_delivery:true events));
  Alcotest.(check int) "both packets delivered" 2
    (Netsim.Net.stats net).Netsim.Net.delivered;
  (* the failure forces at least one deflection, visible per-switch *)
  let g = sc.Nets.graph in
  let sum f = List.fold_left (fun a v -> a + f net v) 0 (Graph.core_nodes g) in
  Alcotest.(check bool) "per-switch deflection tallies" true
    (sum Netsim.Net.deflections_at > 0);
  Alcotest.(check bool) "per-switch drive tallies" true
    (sum Netsim.Net.drives_at > 0)

(* The acceptance sweep: every single core-link failure on net15 and rnp28,
   crossed with all protection levels and deflection policies.  Zero
   invariant violations anywhere; full delivery wherever the paper claims
   it (full protection + AVP/NIP). *)
let test_invariant_sweep () =
  let cases = Experiments.Invariants.run ~packets:4 ~seed:42 () in
  Alcotest.(check bool) "sweep is non-trivial" true (List.length cases > 500);
  List.iter
    (fun (c : Experiments.Invariants.case) ->
      (match c.Experiments.Invariants.violations with
       | [] -> ()
       | v :: _ ->
         Alcotest.failf "%s %s %s %s: %s" c.Experiments.Invariants.topology
           c.Experiments.Invariants.failure
           (Kar.Controller.level_to_string c.Experiments.Invariants.level)
           (Kar.Policy.to_string c.Experiments.Invariants.policy)
           (Format.asprintf "%a" Invariant.pp_violation v));
      if
        Experiments.Invariants.expect_delivery c.Experiments.Invariants.level
          c.Experiments.Invariants.policy
      then
        Alcotest.(check int)
          (Printf.sprintf "full delivery %s %s"
             c.Experiments.Invariants.topology c.Experiments.Invariants.failure)
          c.Experiments.Invariants.packets c.Experiments.Invariants.delivered)
    cases

(* The residue cache must be a pure acceleration: with the cache on
   ([?plan] threaded into the switches) and off, every single-core-link
   failure on net15 and rnp28 must produce the identical flight-recorder
   trace, byte for byte in JSONL form. *)
let test_residue_cache_differential () =
  let core_links g =
    List.filter
      (fun id ->
        let l = Graph.link g id in
        Graph.is_core g l.Graph.ep0.Graph.node
        && Graph.is_core g l.Graph.ep1.Graph.node)
      (List.init (Graph.n_links g) Fun.id)
  in
  List.iter
    (fun (name, sc) ->
      List.iter
        (fun link ->
          let jsonl cache =
            let _, recorder =
              traced_run ~cache sc ~link ~level:Kar.Controller.Full
                ~policy:Kar.Policy.Not_input_port ~packets:3 ~seed:11
            in
            List.map Event.to_jsonl (Recorder.contents recorder)
          in
          Alcotest.(check (list string))
            (Printf.sprintf "%s link %d: cache on = cache off" name link)
            (jsonl false) (jsonl true))
        (core_links sc.Nets.graph))
    [ ("net15", Nets.net15); ("rnp28", Nets.rnp28) ]

(* --- Golden fixtures --- *)

let fixtures =
  [ ("fixtures/fig1_nip_partial.jsonl", `Fig1);
    ("fixtures/net15_nip_full.jsonl", `Net15) ]

(* dune runtest stages the fixtures next to the executable; a bare
   `dune exec test/test_trace.exe` runs from the repo root *)
let fixture_path f = if Sys.file_exists f then f else Filename.concat "test" f

let read_lines file =
  let ic = open_in file in
  let rec go acc =
    match input_line ic with
    | line -> go (line :: acc)
    | exception End_of_file -> close_in ic; List.rev acc
  in
  go []

let test_fixture_replay () =
  List.iter
    (fun (file, which) ->
      let lines = read_lines (fixture_path file) in
      (* every fixture line parses, and the parsed events satisfy the
         order-local invariants *)
      let events =
        List.map
          (fun line ->
            match Event.of_jsonl line with
            | Ok e -> e
            | Error msg -> Alcotest.failf "%s: %s (%s)" file line msg)
          lines
      in
      Alcotest.(check (list string))
        (file ^ " invariants") []
        (names (Invariant.check ~drained:true events));
      (* regenerating the canonical scenario reproduces the fixture byte
         for byte — the simulator's decision sequence is pinned *)
      let regenerated =
        List.map Event.to_jsonl (Experiments.Invariants.canonical_trace which)
      in
      Alcotest.(check (list string)) (file ^ " byte-exact") lines regenerated)
    fixtures

(* --- Binary encoding --- *)

(* Exact roundtrip for arbitrary events — unlike JSONL's %.9g rendering,
   the binary format stores the timestamp's IEEE-754 bits, so no precision
   restriction is needed on the generator. *)
let prop_binary_roundtrip =
  qtest ~count:500 "encode_events |> decode_string is the identity"
    QCheck2.Gen.(
      pair
        (tup6 (0 -- 1_000_000) float (pair (-1 -- 997) (-1 -- 31)) (-1 -- 31)
           (-300 -- 300)
           (0 -- (List.length actions - 1)))
        (0 -- 3))
    (fun ((seq, vtime, (switch, in_port), out_port, ttl, ai), extra) ->
      let mk i =
        { Event.seq = seq + i; vtime; uid = (seq + i) mod 97; switch;
          in_port; out_port; ttl; action = List.nth actions ai }
      in
      let events = List.init (1 + extra) mk in
      Trace.Binary.decode_string (Trace.Binary.encode_events events)
      = Ok events)

let test_binary_rejects_garbage () =
  let one = Trace.Binary.encode_events [ ev ~seq:0 ~ttl:8 Event.Inject ] in
  List.iter
    (fun (what, s) ->
      match Trace.Binary.decode_string s with
      | Ok _ -> Alcotest.failf "%s decoded" what
      | Error _ -> ())
    [ ("empty", ""); ("bad magic", "KARBxxxx" ^ "rest");
      ("jsonl input", {|{"seq":0,...}|});
      ("truncated record", String.sub one 0 (String.length one - 3));
      ("record shorter than fixed part", Trace.Binary.magic ^ "\x05aaaa");
      ("bad action tag",
       (let b = Bytes.of_string one in
        Bytes.set b 9 '\xee';
        (* tag byte of the first record *)
        Bytes.to_string b)) ]

let test_binary_writer_reset () =
  let w = Trace.Binary.writer ~capacity:16 () in
  Alcotest.(check int) "fresh writer holds only the magic" 8
    (Trace.Binary.length w);
  (* grows across the initial capacity, then resets back to just-magic *)
  for i = 0 to 99 do
    Trace.Binary.append w (ev ~seq:i ~ttl:8 Event.Forward)
  done;
  Alcotest.(check int) "100 records" (8 + (100 * 37)) (Trace.Binary.length w);
  (match Trace.Binary.decode_string (Trace.Binary.contents w) with
   | Ok events -> Alcotest.(check int) "decodes all" 100 (List.length events)
   | Error m -> Alcotest.fail m);
  Trace.Binary.reset w;
  Alcotest.(check int) "reset keeps only the magic" 8 (Trace.Binary.length w);
  Alcotest.(check bool) "contents carry the magic" true
    (Trace.Binary.is_binary (Trace.Binary.contents w))

(* The compatibility contract of the binary sink: recording the canonical
   scenarios through it and rendering the decoded events as JSONL is byte
   for byte the committed golden fixture — the two sinks are observationally
   identical. *)
let test_binary_golden_compat () =
  List.iter
    (fun (file, which) ->
      let events = Experiments.Invariants.canonical_trace which in
      let w = Trace.Binary.writer () in
      List.iter (Trace.Binary.sink w) events;
      match Trace.Binary.decode_string (Trace.Binary.contents w) with
      | Error m -> Alcotest.failf "%s: binary decode: %s" file m
      | Ok decoded ->
        let rendered = List.map Event.to_jsonl decoded in
        Alcotest.(check (list string))
          (file ^ " via binary sink, byte-exact")
          (read_lines (fixture_path file))
          rendered)
    fixtures

(* --- Differential Walk <-> Netsim property --- *)

let core_links g =
  List.filter
    (fun id ->
      let l = Graph.link g id in
      Graph.is_core g l.Graph.ep0.Graph.node
      && Graph.is_core g l.Graph.ep1.Graph.node)
    (List.init (Graph.n_links g) Fun.id)

(* The switch-hop sequence of the (single) traced packet: every forwarding
   decision plus the delivery, with ports and remaining ttl.  Terminal
   drops are excluded — the two planes name stranding differently (the
   walker stops where the simulator re-encodes or drops). *)
let fingerprint events =
  List.filter_map
    (fun (e : Event.t) ->
      if Event.is_decision e || e.Event.action = Event.Deliver then
        Some
          ( e.Event.switch, e.Event.in_port, e.Event.out_port, e.Event.ttl,
            Event.action_to_string e.Event.action )
      else None)
    events

let netsim_leg (sc : Nets.scenario) ~plan ~policy ~link ~src ~dst ~seed ~ttl =
  let g = sc.Nets.graph in
  let engine = Netsim.Engine.create () in
  let net = Netsim.Net.create ~graph:g ~engine ~ttl () in
  let recorder =
    Recorder.create
      ~protected_switches:
        (List.map (fun r -> r.Rns.modulus) plan.Kar.Route.residues)
      ()
  in
  Netsim.Net.set_recorder net (Some recorder);
  Netsim.Karnet.install_switches net ~policy ~seed;
  (* no re-encoding: a stranded packet must stop exactly where the walker
     strands *)
  List.iter
    (fun v ->
      Netsim.Karnet.install_edge net v
        ~reencode:(fun _ -> None)
        ~receive:(fun _ _ -> ())
        ())
    (Graph.edge_nodes g);
  Netsim.Net.fail_link net link;
  let packet =
    Netsim.Packet.make ~uid:0 ~src ~dst ~size_bytes:256
      ~route_id:plan.Kar.Route.route_id ~born:0.0 Netsim.Packet.Raw
  in
  Netsim.Net.inject net ~at:src packet;
  Netsim.Engine.run engine;
  Recorder.contents recorder

let walk_leg (sc : Nets.scenario) ~plan ~policy ~link ~src ~dst ~seed ~ttl =
  let g = sc.Nets.graph in
  let recorder =
    Recorder.create
      ~protected_switches:
        (List.map (fun r -> r.Rns.modulus) plan.Kar.Route.residues)
      ()
  in
  let (_ : Kar.Walk.outcome) =
    Kar.Walk.walk g ~plan ~policy ~failed:[ link ] ~src ~dst ~ttl ~recorder
      ~uid:0
      ~rng_for:(Kar.Walk.switch_rngs g ~seed)
      (Util.Prng.of_int 0)
  in
  Recorder.contents recorder

let scenarios = [ Nets.fig1_six; Nets.net15; Nets.rnp28 ]

let prop_walk_netsim_identical =
  qtest ~count:150 "walk and netsim take identical switch-hop sequences"
    QCheck2.Gen.(
      tup6 (0 -- 2) (0 -- 10_000) (0 -- 3) (0 -- 2) (1 -- 10_000) (0 -- 10_000))
    (fun (sci, linkpick, pi, li, seed, pairpick) ->
      let sc = List.nth scenarios sci in
      let g = sc.Nets.graph in
      let links = core_links g in
      let link = List.nth links (linkpick mod List.length links) in
      let policy = List.nth Kar.Policy.all pi in
      let level = List.nth Kar.Controller.all_levels li in
      (* random src/dst over the edge hosts; the scenario pair uses the
         scenario plan (exercising protection + driven deflections), other
         pairs a bare shortest-path plan *)
      let edges = Array.of_list (Graph.edge_nodes g) in
      let n = Array.length edges in
      let src = edges.(pairpick mod n)
      and dst = edges.(pairpick / n mod n) in
      if src = dst then true
      else
        let plan =
          if src = sc.Nets.ingress && dst = sc.Nets.egress then
            Kar.Controller.scenario_plan sc level
          else Kar.Controller.route g ~src ~dst ~protection:[]
        in
        let ttl = 64 in
        let ns = netsim_leg sc ~plan ~policy ~link ~src ~dst ~seed ~ttl in
        let wk = walk_leg sc ~plan ~policy ~link ~src ~dst ~seed ~ttl in
        Invariant.check ns = [] && Invariant.check wk = []
        && fingerprint ns = fingerprint wk)

let () =
  Alcotest.run "trace"
    [
      ( "recorder",
        [
          Alcotest.test_case "ring overwrite" `Quick test_ring_overwrite;
          Alcotest.test_case "sink sees everything" `Quick
            test_sink_sees_overwritten;
          Alcotest.test_case "protected set" `Quick test_protected_set;
        ] );
      ( "jsonl",
        [
          Alcotest.test_case "golden line" `Quick test_jsonl_golden_line;
          prop_jsonl_roundtrip;
          Alcotest.test_case "rejects garbage" `Quick test_jsonl_rejects_garbage;
        ] );
      ( "invariants",
        [
          Alcotest.test_case "clean trace" `Quick test_clean_trace;
          Alcotest.test_case "driven loop" `Quick test_driven_loop_detected;
          Alcotest.test_case "deflect resets driven walk" `Quick
            test_deflect_resets_driven_walk;
          Alcotest.test_case "conservation" `Quick test_conservation_detected;
          Alcotest.test_case "ttl" `Quick test_ttl_violations_detected;
          Alcotest.test_case "fifo" `Quick test_fifo_violation_detected;
          Alcotest.test_case "delivery expectation" `Quick
            test_delivery_expectation;
          Alcotest.test_case "truncated suffix" `Quick test_truncated_suffix;
        ] );
      ( "netsim",
        [
          Alcotest.test_case "traced karnet run" `Quick test_karnet_traced_run;
          Alcotest.test_case "sweep: all failures, all policies" `Quick
            test_invariant_sweep;
          Alcotest.test_case "residue cache on/off: identical traces" `Quick
            test_residue_cache_differential;
        ] );
      ( "fixtures",
        [ Alcotest.test_case "replay and diff" `Quick test_fixture_replay ] );
      ( "binary",
        [
          prop_binary_roundtrip;
          Alcotest.test_case "rejects garbage" `Quick test_binary_rejects_garbage;
          Alcotest.test_case "writer grows and resets" `Quick
            test_binary_writer_reset;
          Alcotest.test_case "golden fixtures via binary sink" `Quick
            test_binary_golden_compat;
        ] );
      ("differential", [ prop_walk_netsim_identical ]);
    ]
