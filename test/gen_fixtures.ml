(* Regenerates the golden trace fixtures under test/fixtures/.  Run from
   the repo root after an intentional change to the simulator's decision
   sequence:

     dune exec test/gen_fixtures.exe -- test/fixtures

   The replay test (test_trace.ml, "fixtures" group) diffs the checked-in
   files byte for byte against a fresh run of the same canonical
   scenarios. *)

let () =
  let dir = if Array.length Sys.argv > 1 then Sys.argv.(1) else "test/fixtures" in
  let write name events =
    let path = Filename.concat dir name in
    let oc = open_out path in
    List.iter
      (fun e ->
        output_string oc (Trace.Event.to_jsonl e);
        output_char oc '\n')
      events;
    close_out oc;
    Printf.printf "wrote %s (%d events)\n" path (List.length events)
  in
  write "fig1_nip_partial.jsonl" (Experiments.Invariants.canonical_trace `Fig1);
  write "net15_nip_full.jsonl" (Experiments.Invariants.canonical_trace `Net15);
  (* the serving-layer fixture is already rendered JSONL *)
  let path = Filename.concat dir "service_1k.jsonl" in
  let oc = open_out path in
  let contents = Experiments.Service.canonical_trace () in
  output_string oc contents;
  close_out oc;
  Printf.printf "wrote %s (%d lines)\n" path
    (String.fold_left (fun n c -> if c = '\n' then n + 1 else n) 0 contents);
  (* the metrics fixture is the registry snapshot stream of the canonical
     serving run (one mid-run link failure), already rendered JSONL *)
  let path = Filename.concat dir "service_metrics_1k.jsonl" in
  let oc = open_out path in
  let contents = Experiments.Service.canonical_metrics () in
  output_string oc contents;
  close_out oc;
  Printf.printf "wrote %s (%d lines)\n" path
    (String.fold_left (fun n c -> if c = '\n' then n + 1 else n) 0 contents);
  (* the churn fixture is the canonical net15 flap event stream, already
     rendered JSONL *)
  let path = Filename.concat dir "churn_net15_flap.jsonl" in
  let oc = open_out path in
  let contents = Experiments.Churn.fixture_lines () in
  output_string oc contents;
  close_out oc;
  Printf.printf "wrote %s (%d lines)\n" path
    (String.fold_left (fun n c -> if c = '\n' then n + 1 else n) 0 contents);
  (* the verifier fixture is verdict + counterexample lines, already JSON *)
  let path = Filename.concat dir "verify_net15_k2.jsonl" in
  let oc = open_out path in
  let lines = Experiments.Verify.fixture_lines () in
  List.iter
    (fun l ->
      output_string oc l;
      output_char oc '\n')
    lines;
  close_out oc;
  Printf.printf "wrote %s (%d lines)\n" path (List.length lines)
