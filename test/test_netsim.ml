(* Tests for the discrete-event network simulator: the engine's ordering
   and cancellation guarantees, link serialisation/propagation timing,
   queue overflow, failure semantics (queued and in-flight packets die),
   and the KAR switch/edge wiring. *)

module Engine = Netsim.Engine
module Net = Netsim.Net
module Packet = Netsim.Packet
module Graph = Topo.Graph

(* --- engine --- *)

let test_engine_ordering () =
  let e = Engine.create () in
  let log = ref [] in
  ignore (Engine.schedule_at e 3.0 (fun () -> log := 3 :: !log));
  ignore (Engine.schedule_at e 1.0 (fun () -> log := 1 :: !log));
  ignore (Engine.schedule_at e 2.0 (fun () -> log := 2 :: !log));
  Engine.run e;
  Alcotest.(check (list int)) "time order" [ 1; 2; 3 ] (List.rev !log);
  Alcotest.(check (float 1e-9)) "clock at last event" 3.0 (Engine.now e)

let test_engine_fifo_same_time () =
  let e = Engine.create () in
  let log = ref [] in
  for i = 1 to 5 do
    ignore (Engine.schedule_at e 1.0 (fun () -> log := i :: !log))
  done;
  Engine.run e;
  Alcotest.(check (list int)) "insertion order" [ 1; 2; 3; 4; 5 ] (List.rev !log)

let test_engine_cancel () =
  let e = Engine.create () in
  let fired = ref false in
  let ev = Engine.schedule_at e 1.0 (fun () -> fired := true) in
  Engine.cancel ev;
  Engine.run e;
  Alcotest.(check bool) "cancelled" false !fired

let test_engine_schedule_from_callback () =
  let e = Engine.create () in
  let log = ref [] in
  ignore
    (Engine.schedule_at e 1.0 (fun () ->
         log := "a" :: !log;
         ignore (Engine.schedule_in e 0.5 (fun () -> log := "b" :: !log))));
  Engine.run e;
  Alcotest.(check (list string)) "nested" [ "a"; "b" ] (List.rev !log);
  Alcotest.(check (float 1e-9)) "clock" 1.5 (Engine.now e)

let test_engine_past_rejected () =
  let e = Engine.create () in
  ignore (Engine.schedule_at e 5.0 (fun () -> ()));
  Engine.run e;
  match Engine.schedule_at e 1.0 (fun () -> ()) with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "expected rejection of past event"

let test_engine_run_until () =
  let e = Engine.create () in
  let count = ref 0 in
  for i = 1 to 10 do
    ignore (Engine.schedule_at e (float_of_int i) (fun () -> incr count))
  done;
  Engine.run_until e 5.0;
  Alcotest.(check int) "five fired" 5 !count;
  Alcotest.(check (float 1e-9)) "clock advanced to boundary" 5.0 (Engine.now e);
  Alcotest.(check int) "five pending" 5 (Engine.pending e);
  Engine.run e;
  Alcotest.(check int) "all fired" 10 !count

(* Lazy purge of cancelled events: schedule many timers, cancel most
   (past the half-the-heap threshold that triggers compaction), and check
   that ordering, [pending], and the survivors are unaffected. *)
let test_engine_purge_keeps_order () =
  let e = Engine.create () in
  let log = ref [] in
  let events =
    List.init 500 (fun i ->
        let t = float_of_int (i + 1) in
        (i, Engine.schedule_at e t (fun () -> log := i :: !log)))
  in
  (* cancel everything not divisible by 10: 450 of 500, well past the
     purge threshold *)
  List.iter (fun (i, ev) -> if i mod 10 <> 0 then Engine.cancel ev) events;
  Alcotest.(check int) "pending counts survivors only" 50 (Engine.pending e);
  Engine.run e;
  Alcotest.(check (list int))
    "survivors fire in time order"
    (List.init 50 (fun k -> k * 10))
    (List.rev !log)

let test_engine_cancel_idempotent_and_late () =
  let e = Engine.create () in
  let fired = ref 0 in
  let ev = Engine.schedule_at e 1.0 (fun () -> incr fired) in
  (* double cancel must not unbalance the cancellation counter *)
  Engine.cancel ev;
  Engine.cancel ev;
  Alcotest.(check int) "pending after double cancel" 0 (Engine.pending e);
  let ev2 = Engine.schedule_at e 2.0 (fun () -> incr fired) in
  Engine.run e;
  Alcotest.(check int) "only the live event fired" 1 !fired;
  (* cancelling after the event ran is a no-op *)
  Engine.cancel ev2;
  Alcotest.(check int) "pending after late cancel" 0 (Engine.pending e)

let test_engine_pending_after_purge_mixed () =
  let e = Engine.create () in
  let count = ref 0 in
  (* interleave cancellations with fresh schedules so purges happen while
     the heap still holds live events at many depths *)
  let pending_expected = ref 0 in
  for round = 0 to 9 do
    let evs =
      List.init 100 (fun i ->
          Engine.schedule_at e
            (float_of_int ((round * 100) + i + 1))
            (fun () -> incr count))
    in
    List.iteri (fun i ev -> if i mod 4 <> 0 then Engine.cancel ev else incr pending_expected) evs;
    Alcotest.(check int)
      (Printf.sprintf "pending after round %d" round)
      !pending_expected (Engine.pending e)
  done;
  Engine.run e;
  Alcotest.(check int) "all survivors ran" !pending_expected !count;
  Alcotest.(check int) "nothing pending" 0 (Engine.pending e)

let test_engine_stop () =
  let e = Engine.create () in
  let count = ref 0 in
  for i = 1 to 10 do
    ignore
      (Engine.schedule_at e (float_of_int i) (fun () ->
           incr count;
           if !count = 3 then Engine.stop e))
  done;
  Engine.run e;
  Alcotest.(check int) "stopped after three" 3 !count

(* --- a two-node fixture: host A - switch S - host B --- *)

let fixture ?(rate = 1e6) ?(delay = 1e-3) ?queue_capacity_bytes () =
  let b = Graph.Builder.create () in
  let s = Graph.Builder.add_node b 3 in
  let a = Graph.Builder.add_node b ~kind:Graph.Edge 100 in
  let h = Graph.Builder.add_node b ~kind:Graph.Edge 101 in
  ignore (Graph.Builder.add_link b ~rate_bps:rate ~delay_s:delay a s);
  let l_sb = Graph.Builder.add_link b ~rate_bps:rate ~delay_s:delay s h in
  let g = Graph.Builder.finish b in
  let engine = Engine.create () in
  let net = Net.create ~graph:g ~engine ?queue_capacity_bytes () in
  (net, engine, g, a, s, h, l_sb)

(* route id congruent to 1 mod 3: switch 3 forwards port 1 (toward B since
   A-S was added first => port 0 is toward A) *)
let route_to_b = Bignum.Z.of_int 1

let install_ingress net a =
  Netsim.Karnet.install_edge net a ~reencode:(fun _ -> None)
    ~receive:(fun _ _ -> ())
    ()

let make_packet net ~src ~dst =
  Packet.make ~uid:(Net.fresh_uid net) ~src ~dst ~size_bytes:1000
    ~route_id:route_to_b ~born:0.0 Packet.Raw

let test_delivery_and_timing () =
  let net, engine, _, a, _, h, _ = fixture () in
  Netsim.Karnet.install_switches net ~policy:Kar.Policy.Not_input_port ~seed:1;
  install_ingress net a;
  let arrival = ref nan in
  Netsim.Karnet.install_edge net h ~reencode:(fun _ -> None)
    ~receive:(fun _ _ -> arrival := Engine.now engine)
    ();
  Net.inject net ~at:a (make_packet net ~src:a ~dst:h);
  Engine.run engine;
  (* 2 links, each: tx = 1000*8/1e6 = 8 ms, prop = 1 ms => 18 ms *)
  Alcotest.(check (float 1e-6)) "store-and-forward timing" 0.018 !arrival;
  Alcotest.(check int) "delivered count" 1 (Net.stats net).Net.delivered

let test_serialisation_queueing () =
  (* two packets back to back: the second waits for the first's tx *)
  let net, engine, _, a, _, h, _ = fixture () in
  Netsim.Karnet.install_switches net ~policy:Kar.Policy.Not_input_port ~seed:1;
  install_ingress net a;
  let times = ref [] in
  Netsim.Karnet.install_edge net h ~reencode:(fun _ -> None)
    ~receive:(fun _ _ -> times := Engine.now engine :: !times)
    ();
  Net.inject net ~at:a (make_packet net ~src:a ~dst:h);
  Net.inject net ~at:a (make_packet net ~src:a ~dst:h);
  Engine.run engine;
  match List.rev !times with
  | [ t1; t2 ] ->
    Alcotest.(check (float 1e-6)) "first" 0.018 t1;
    (* second: starts tx on link1 8ms later, pipelines behind the first *)
    Alcotest.(check (float 1e-6)) "second is one tx later" 0.026 t2
  | l -> Alcotest.failf "expected 2 arrivals, got %d" (List.length l)

let test_queue_overflow_drops () =
  (* queue capacity of 2.5 packets: a burst of 10 loses most *)
  let net, engine, _, a, _, h, _ = fixture ~queue_capacity_bytes:2500 () in
  Netsim.Karnet.install_switches net ~policy:Kar.Policy.Not_input_port ~seed:1;
  install_ingress net a;
  let received = ref 0 in
  Netsim.Karnet.install_edge net h ~reencode:(fun _ -> None)
    ~receive:(fun _ _ -> incr received)
    ();
  for _ = 1 to 10 do
    Net.inject net ~at:a (make_packet net ~src:a ~dst:h)
  done;
  Engine.run engine;
  Alcotest.(check bool) "some dropped" true ((Net.stats net).Net.dropped_queue_full > 0);
  Alcotest.(check int) "conservation" 10
    (!received + (Net.stats net).Net.dropped_queue_full)

let test_failure_kills_queued_and_inflight () =
  let net, engine, _, a, _, h, l_sb = fixture () in
  Netsim.Karnet.install_switches net ~policy:Kar.Policy.No_deflection ~seed:1;
  install_ingress net a;
  let received = ref 0 in
  Netsim.Karnet.install_edge net h ~reencode:(fun _ -> None)
    ~receive:(fun _ _ -> incr received)
    ();
  for _ = 1 to 5 do
    Net.inject net ~at:a (make_packet net ~src:a ~dst:h)
  done;
  (* fail S-B while the burst is in transit on it *)
  ignore (Engine.schedule_at engine 0.012 (fun () -> Net.fail_link net l_sb));
  Engine.run engine;
  Alcotest.(check bool) "packets lost" true (!received < 5);
  Alcotest.(check bool) "accounted as link_down or no_route" true
    ((Net.stats net).Net.dropped_link_down + (Net.stats net).Net.dropped_no_route
     > 0)

let test_repair_resumes () =
  let net, engine, _, a, _, h, l_sb = fixture () in
  Netsim.Karnet.install_switches net ~policy:Kar.Policy.No_deflection ~seed:1;
  install_ingress net a;
  let received = ref 0 in
  Netsim.Karnet.install_edge net h ~reencode:(fun _ -> None)
    ~receive:(fun _ _ -> incr received)
    ();
  Net.fail_link net l_sb;
  Alcotest.(check bool) "down" false (Net.link_up net l_sb);
  Net.repair_link net l_sb;
  Alcotest.(check bool) "up" true (Net.link_up net l_sb);
  Net.inject net ~at:a (make_packet net ~src:a ~dst:h);
  Engine.run engine;
  Alcotest.(check int) "delivered after repair" 1 !received

let test_ttl_enforced () =
  (* two switches in a loop would bounce forever without TTL; emulate by a
     route id that always points back: use fig1 with SW7-SW11 cut and HP so
     packets wander, with a tiny TTL *)
  let sc = Topo.Nets.fig1_six in
  let engine = Engine.create () in
  let net = Net.create ~graph:sc.Topo.Nets.graph ~engine ~ttl:4 () in
  Netsim.Karnet.install_switches net ~policy:Kar.Policy.Hot_potato ~seed:5;
  let plan = Kar.Controller.scenario_plan sc Kar.Controller.Unprotected in
  (* no edge handlers: stranded packets count as delivered/no-route via
     default; cut SW7-SW11 to force deflection *)
  Net.fail_link net (List.hd sc.Topo.Nets.failures).Topo.Nets.link;
  Netsim.Karnet.install_edge net sc.Topo.Nets.ingress ~reencode:(fun _ -> None)
    ~receive:(fun _ _ -> ())
    ();
  for _ = 1 to 50 do
    let p =
      Packet.make ~uid:(Net.fresh_uid net) ~src:sc.Topo.Nets.ingress
        ~dst:sc.Topo.Nets.egress ~size_bytes:100
        ~route_id:plan.Kar.Route.route_id ~born:0.0 Packet.Raw
    in
    Net.inject net ~at:sc.Topo.Nets.ingress p
  done;
  Engine.run engine;
  Alcotest.(check bool) "ttl drops occur" true ((Net.stats net).Net.dropped_ttl > 0)

let test_detection_delay_blackholes () =
  (* with a detection delay, the switch keeps choosing the dead port and
     packets are lost until detection; with oracle detection it deflects
     immediately *)
  let run detection =
    let sc = Topo.Nets.net15 in
    let engine = Engine.create () in
    let net =
      Net.create ~graph:sc.Topo.Nets.graph ~engine ~detection_delay_s:detection ()
    in
    Netsim.Karnet.install_switches net ~policy:Kar.Policy.Not_input_port ~seed:1;
    let delivered = ref 0 in
    Netsim.Karnet.install_edge net sc.Topo.Nets.egress ~reencode:(fun _ -> None)
      ~receive:(fun _ _ -> incr delivered)
      ();
    Netsim.Karnet.install_edge net sc.Topo.Nets.ingress ~reencode:(fun _ -> None)
      ~receive:(fun _ _ -> ())
      ();
    let plan = Kar.Controller.scenario_plan sc Kar.Controller.Full in
    Net.fail_link net (List.nth sc.Topo.Nets.failures 1).Topo.Nets.link;
    (* inject 20 packets over the first 5 ms *)
    for i = 0 to 19 do
      ignore
        (Engine.schedule_at engine (float_of_int i *. 0.25e-3) (fun () ->
             let p =
               Netsim.Packet.make ~uid:(Net.fresh_uid net) ~src:sc.Topo.Nets.ingress
                 ~dst:sc.Topo.Nets.egress ~size_bytes:1000
                 ~route_id:plan.Kar.Route.route_id ~born:0.0 Netsim.Packet.Raw
             in
             Net.inject net ~at:sc.Topo.Nets.ingress p))
    done;
    Engine.run engine;
    !delivered
  in
  Alcotest.(check int) "oracle: all delivered" 20 (run 0.0);
  let with_delay = run 2.5e-3 in
  Alcotest.(check bool)
    (Printf.sprintf "2.5ms detection loses the first half (%d delivered)" with_delay)
    true
    (with_delay < 20 && with_delay > 0)

let test_edge_reencode () =
  (* a packet stranded at AS2 of net15 gets a fresh route id and still
     reaches AS3 *)
  let sc = Topo.Nets.net15 in
  let g = sc.Topo.Nets.graph in
  let engine = Engine.create () in
  let net = Net.create ~graph:g ~engine () in
  Netsim.Karnet.install_switches net ~policy:Kar.Policy.Not_input_port ~seed:1;
  let cache = Kar.Controller.create_cache g in
  let delivered = ref false in
  List.iter
    (fun v ->
      Netsim.Karnet.install_edge net v
        ~reencode:(fun p -> Kar.Controller.reencode cache ~at:v ~dst:(Packet.dst p))
        ~receive:(fun _ _ -> delivered := true)
        ())
    (Graph.edge_nodes g);
  let as2 = Graph.node_of_label g 1002 in
  (* inject at AS2 a packet addressed to AS3 carrying a wrong route id *)
  let p =
    Packet.make ~uid:(Net.fresh_uid net) ~src:as2 ~dst:sc.Topo.Nets.egress
      ~size_bytes:100 ~route_id:(Bignum.Z.of_int 424242) ~born:0.0 Packet.Raw
  in
  (* deliver it "from the wire" so in_port >= 0: send from its peer switch *)
  let sw23 = Graph.node_of_label g 23 in
  let port = Option.get (Graph.port_towards g sw23 as2) in
  Net.send net ~from_node:sw23 ~port p;
  Engine.run engine;
  Alcotest.(check bool) "re-encoded and delivered" true !delivered;
  Alcotest.(check int) "one reencode" 1 (Net.stats net).Net.reencodes

let test_karnet_full_path_deterministic () =
  (* healthy net15, NIP: a probe follows exactly the primary path *)
  let sc = Topo.Nets.net15 in
  let engine = Engine.create () in
  let net = Net.create ~graph:sc.Topo.Nets.graph ~engine () in
  Netsim.Karnet.install_switches net ~policy:Kar.Policy.Not_input_port ~seed:1;
  let plan = Kar.Controller.scenario_plan sc Kar.Controller.Full in
  let hops = ref (-1) in
  Netsim.Karnet.install_edge net sc.Topo.Nets.egress ~reencode:(fun _ -> None)
    ~receive:(fun _ p -> hops := Packet.hops p)
    ();
  Netsim.Karnet.install_edge net sc.Topo.Nets.ingress ~reencode:(fun _ -> None)
    ~receive:(fun _ _ -> ())
    ();
  let p =
    Packet.make ~uid:0 ~src:sc.Topo.Nets.ingress ~dst:sc.Topo.Nets.egress
      ~size_bytes:1000 ~route_id:plan.Kar.Route.route_id ~born:0.0 Packet.Raw
  in
  Net.inject net ~at:sc.Topo.Nets.ingress p;
  Engine.run engine;
  Alcotest.(check int) "four switch hops" 4 !hops;
  Alcotest.(check int) "no deflections" 0 (Net.stats net).Net.deflections

(* --- reorder analyzer --- *)

let feed seqs =
  let t = Netsim.Reorder.create () in
  List.iter (Netsim.Reorder.observe t) seqs;
  Netsim.Reorder.metrics t

(* --- buffer pool --- *)

let test_pool_reuse_physical () =
  let pool = Packet.Pool.create () in
  let p1 = Packet.Pool.acquire pool in
  Packet.Pool.release pool p1;
  let p2 = Packet.Pool.acquire pool in
  Alcotest.(check bool) "released buffer is reused" true (p1 == p2);
  Alcotest.(check int) "one grow" 1 (Packet.Pool.grows pool);
  Alcotest.(check int) "one hit" 1 (Packet.Pool.hits pool);
  Alcotest.(check int) "one release" 1 (Packet.Pool.releases pool);
  Alcotest.(check int) "one in flight" 1 (Packet.Pool.in_flight pool)

let test_pool_stats_accounting () =
  let pool = Packet.Pool.create () in
  let ps = Array.init 5 (fun _ -> Packet.Pool.acquire pool) in
  Alcotest.(check int) "five grows" 5 (Packet.Pool.grows pool);
  Alcotest.(check int) "no hits yet" 0 (Packet.Pool.hits pool);
  Alcotest.(check int) "five in flight" 5 (Packet.Pool.in_flight pool);
  Array.iter (fun p -> Packet.Pool.release pool p) ps;
  Alcotest.(check int) "all back" 0 (Packet.Pool.in_flight pool);
  Alcotest.(check int) "five releases" 5 (Packet.Pool.releases pool);
  (* double release must be a no-op, not a free-list corruption *)
  Packet.Pool.release pool ps.(0);
  Alcotest.(check int) "double release ignored" 5 (Packet.Pool.releases pool);
  Alcotest.(check int) "in flight still zero" 0 (Packet.Pool.in_flight pool);
  (* unpooled packets (Packet.make) are never taken by the pool *)
  let loose =
    Packet.make ~uid:1 ~src:0 ~dst:1 ~size_bytes:10 ~route_id:route_to_b
      ~born:0.0 Packet.Raw
  in
  Packet.Pool.release pool loose;
  Alcotest.(check int) "unpooled release ignored" 5 (Packet.Pool.releases pool)

let test_pool_live_bit () =
  let pool = Packet.Pool.create () in
  let p = Packet.Pool.acquire pool in
  Alcotest.(check bool) "live after acquire" true (Packet.live p);
  Packet.Pool.release pool p;
  Alcotest.(check bool) "dead after release" false (Packet.live p)

let test_pool_drains_after_run () =
  (* end to end: every packet a simulation allocates goes back to the pool
     by the time the engine drains — delivered, dropped, or rescued *)
  let net, engine, _, a, _, h, _ = fixture () in
  Netsim.Karnet.install_switches net ~policy:Kar.Policy.Not_input_port ~seed:1;
  install_ingress net a;
  Netsim.Karnet.install_edge net h ~reencode:(fun _ -> None)
    ~receive:(fun _ _ -> ())
    ();
  for _ = 1 to 50 do
    let p =
      Net.alloc net ~src:a ~dst:h ~size_bytes:1000 ~route_id:route_to_b
        Packet.Raw
    in
    Net.inject net ~at:a p
  done;
  Engine.run engine;
  Alcotest.(check int) "all delivered" 50 (Net.stats net).Net.delivered;
  let pool = Net.pool net in
  Alcotest.(check int) "pool fully drained" 0 (Packet.Pool.in_flight pool);
  (* all 50 were allocated before the engine ran, so the first run grows 50
     buffers; a second identical run must be all hits, no new buffers *)
  let grows_before = Packet.Pool.grows pool in
  for _ = 1 to 50 do
    let p =
      Net.alloc net ~src:a ~dst:h ~size_bytes:1000 ~route_id:route_to_b
        Packet.Raw
    in
    Net.inject net ~at:a p
  done;
  Engine.run engine;
  Alcotest.(check int) "warm run creates nothing" grows_before
    (Packet.Pool.grows pool);
  Alcotest.(check int) "warm run fully drained" 0 (Packet.Pool.in_flight pool)

let test_reorder_in_order () =
  let m = feed [ 0; 1; 2; 3; 4; 5 ] in
  Alcotest.(check int) "none reordered" 0 m.Netsim.Reorder.reordered;
  Alcotest.(check (float 1e-9)) "fraction 0" 0.0 m.Netsim.Reorder.reordered_fraction;
  Alcotest.(check int) "no buffer" 0 m.Netsim.Reorder.buffer_packets

let test_reorder_single_swap () =
  (* 0 2 1 3: packet 1 arrives after 2 -> one reordered, extent 1 *)
  let m = feed [ 0; 2; 1; 3 ] in
  Alcotest.(check int) "one reordered" 1 m.Netsim.Reorder.reordered;
  Alcotest.(check int) "extent 1" 1 m.Netsim.Reorder.max_extent;
  Alcotest.(check (float 1e-9)) "mean extent" 1.0 m.Netsim.Reorder.mean_extent;
  Alcotest.(check int) "lateness 1" 1 m.Netsim.Reorder.max_late

let test_reorder_late_burst () =
  (* packet 0 arrives after 5 later ones: extent 5 *)
  let m = feed [ 1; 2; 3; 4; 5; 0 ] in
  Alcotest.(check int) "one reordered" 1 m.Netsim.Reorder.reordered;
  Alcotest.(check int) "extent 5" 5 m.Netsim.Reorder.max_extent;
  Alcotest.(check int) "buffer = extent" 5 m.Netsim.Reorder.buffer_packets;
  Alcotest.(check int) "lateness 5" 5 m.Netsim.Reorder.max_late

let test_reorder_with_losses () =
  (* gaps (losses) alone are not reordering *)
  let m = feed [ 0; 2; 5; 9 ] in
  Alcotest.(check int) "no reordering from gaps" 0 m.Netsim.Reorder.reordered

let test_reorder_interleaved () =
  (* two interleaved streams offset by one: every second packet reordered
     with extent 1 (the NIP two-path signature) *)
  let m = feed [ 1; 0; 3; 2; 5; 4; 7; 6 ] in
  Alcotest.(check int) "half reordered" 4 m.Netsim.Reorder.reordered;
  Alcotest.(check int) "extent stays 1" 1 m.Netsim.Reorder.max_extent

(* --- sharded (conservative parallel) simulation --- *)

(* Run a full TCP-over-KAR simulation of [sc] with a mid-run failure and
   return the complete flight-recorder trace plus the partition-invariant
   counters.  [regions = None] is the historical serial path; [Some r]
   partitions the graph and drives the epoch-barrier loop. *)
let run_scenario ?regions sc ~fail_idx ~seed ~duration () =
  let g = sc.Topo.Nets.graph in
  let recorder = Trace.Recorder.create ~capacity:(1 lsl 20) () in
  let net =
    match regions with
    | None -> Net.create ~graph:g ~engine:(Engine.create ()) ()
    | Some r ->
      let partition = Topo.Partition.make g ~regions:r in
      Net.create_partitioned ~graph:g ~partition ()
  in
  Net.set_recorder net (Some recorder);
  Netsim.Karnet.install_switches net ~policy:Kar.Policy.Not_input_port ~seed;
  let stack = Tcp.Stack.create ~net () in
  let fwd = Kar.Controller.scenario_plan sc Kar.Controller.Full in
  let rev = Kar.Controller.scenario_reverse_plan sc Kar.Controller.Full in
  let flow =
    Tcp.Flow.start ~net ~id:1 ~src:sc.Topo.Nets.ingress ~dst:sc.Topo.Nets.egress
      ~fwd_route:fwd.Kar.Route.route_id ~rev_route:rev.Kar.Route.route_id ()
  in
  Tcp.Stack.register stack flow;
  let fc = List.nth sc.Topo.Nets.failures fail_idx in
  Net.schedule_failure net fc.Topo.Nets.link ~at:(duration /. 3.0)
    ~duration:(duration /. 3.0);
  Net.run_until net duration;
  let trace = List.map Trace.Event.to_jsonl (Trace.Recorder.contents recorder) in
  let in_flight = Net.pool_in_flight net in
  (trace, Net.stats net, Tcp.Flow.stats flow, in_flight)

let check_stats_equal name (a : Net.stats) (b : Net.stats) =
  Alcotest.(check int) (name ^ " injected") a.Net.injected b.Net.injected;
  Alcotest.(check int) (name ^ " delivered") a.Net.delivered b.Net.delivered;
  Alcotest.(check int)
    (name ^ " dropped-link-down") a.Net.dropped_link_down b.Net.dropped_link_down;
  Alcotest.(check int)
    (name ^ " dropped-queue-full") a.Net.dropped_queue_full b.Net.dropped_queue_full;
  Alcotest.(check int) (name ^ " dropped-ttl") a.Net.dropped_ttl b.Net.dropped_ttl;
  Alcotest.(check int) (name ^ " hops") a.Net.total_switch_hops b.Net.total_switch_hops;
  Alcotest.(check int) (name ^ " deflections") a.Net.deflections b.Net.deflections;
  Alcotest.(check int) (name ^ " reencodes") a.Net.reencodes b.Net.reencodes

let check_sharded_matches_serial sc ~fail_idx ~seed ~duration rs () =
  let serial_trace, serial_stats, serial_flow, serial_in_flight =
    run_scenario sc ~fail_idx ~seed ~duration ()
  in
  Alcotest.(check bool) "serial trace non-trivial" true
    (List.length serial_trace > 100);
  List.iter
    (fun r ->
      let trace, stats, flow, in_flight =
        run_scenario ~regions:r sc ~fail_idx ~seed ~duration ()
      in
      let name = Printf.sprintf "r=%d" r in
      (if Sys.getenv_opt "KAR_TEST_DUMP" <> None then begin
         let dump path lines =
           let oc = open_out path in
           List.iter (fun l -> output_string oc (l ^ "\n")) lines;
           close_out oc
         in
         dump "/tmp/trace_serial.jsonl" serial_trace;
         dump (Printf.sprintf "/tmp/trace_r%d.jsonl" r) trace
       end);
      Alcotest.(check int)
        (name ^ " trace length") (List.length serial_trace) (List.length trace);
      List.iteri
        (fun i (s, p) ->
          if not (String.equal s p) then
            Alcotest.failf "%s trace diverges at event %d:\n  serial:  %s\n  sharded: %s"
              name i s p)
        (List.combine serial_trace trace);
      check_stats_equal name serial_stats stats;
      Alcotest.(check int) (name ^ " flow bytes-acked")
        serial_flow.Tcp.Flow.bytes_acked flow.Tcp.Flow.bytes_acked;
      Alcotest.(check int) (name ^ " flow retransmissions")
        serial_flow.Tcp.Flow.retransmissions flow.Tcp.Flow.retransmissions;
      Alcotest.(check int) (name ^ " packets in flight at stop")
        serial_in_flight in_flight)
    rs

let test_sharded_determinism_net15 =
  check_sharded_matches_serial Topo.Nets.net15 ~fail_idx:1 ~seed:42 ~duration:2.0
    [ 1; 2; 4; 8 ]

let test_sharded_determinism_rnp28 =
  check_sharded_matches_serial Topo.Nets.rnp28 ~fail_idx:0 ~seed:7 ~duration:2.0
    [ 2; 4 ]

let test_sharded_zero_delay_cut_rejected () =
  (* a graph whose every link has zero delay cannot be partitioned into
     2+ regions: the lookahead would be zero *)
  let b = Graph.Builder.create () in
  let a = Graph.Builder.add_node b ~kind:Graph.Edge 100 in
  let s1 = Graph.Builder.add_node b ~kind:Graph.Core 3 in
  let s2 = Graph.Builder.add_node b ~kind:Graph.Core 5 in
  let d = Graph.Builder.add_node b ~kind:Graph.Edge 101 in
  ignore (Graph.Builder.add_link b ~rate_bps:1e9 ~delay_s:0.0 a s1);
  ignore (Graph.Builder.add_link b ~rate_bps:1e9 ~delay_s:0.0 s1 s2);
  ignore (Graph.Builder.add_link b ~rate_bps:1e9 ~delay_s:0.0 s2 d);
  let g = Graph.Builder.finish b in
  let partition = Topo.Partition.make g ~regions:2 in
  (match Net.create_partitioned ~graph:g ~partition () with
  | _ -> Alcotest.fail "zero-delay cut was accepted"
  | exception Invalid_argument msg ->
    Alcotest.(check bool)
      (Printf.sprintf "error names the zero-delay cut (%s)" msg)
      true
      (Astring.String.is_infix ~affix:"zero-delay" msg));
  (* the same graph is fine as a single region (no cut links) *)
  let solo = Topo.Partition.make g ~regions:1 in
  let net = Net.create_partitioned ~graph:g ~partition:solo () in
  Alcotest.(check int) "solo regions" 1 (Net.n_regions net)

let () =
  Alcotest.run "netsim"
    [
      ( "engine",
        [
          Alcotest.test_case "timestamp ordering" `Quick test_engine_ordering;
          Alcotest.test_case "FIFO among equal stamps" `Quick test_engine_fifo_same_time;
          Alcotest.test_case "cancellation" `Quick test_engine_cancel;
          Alcotest.test_case "scheduling from callbacks" `Quick
            test_engine_schedule_from_callback;
          Alcotest.test_case "past events rejected" `Quick test_engine_past_rejected;
          Alcotest.test_case "run_until" `Quick test_engine_run_until;
          Alcotest.test_case "stop" `Quick test_engine_stop;
          Alcotest.test_case "purge keeps order" `Quick test_engine_purge_keeps_order;
          Alcotest.test_case "cancel idempotent and late" `Quick
            test_engine_cancel_idempotent_and_late;
          Alcotest.test_case "pending across purges" `Quick
            test_engine_pending_after_purge_mixed;
        ] );
      ( "links",
        [
          Alcotest.test_case "store-and-forward timing" `Quick test_delivery_and_timing;
          Alcotest.test_case "serialisation queueing" `Quick test_serialisation_queueing;
          Alcotest.test_case "queue overflow" `Quick test_queue_overflow_drops;
        ] );
      ( "failures",
        [
          Alcotest.test_case "failure kills queued/in-flight" `Quick
            test_failure_kills_queued_and_inflight;
          Alcotest.test_case "repair resumes" `Quick test_repair_resumes;
          Alcotest.test_case "ttl enforced" `Quick test_ttl_enforced;
          Alcotest.test_case "detection delay black-holes" `Quick
            test_detection_delay_blackholes;
        ] );
      ( "pool",
        [
          Alcotest.test_case "released buffer is reused" `Quick
            test_pool_reuse_physical;
          Alcotest.test_case "stats accounting" `Quick test_pool_stats_accounting;
          Alcotest.test_case "live bit" `Quick test_pool_live_bit;
          Alcotest.test_case "simulation drains the pool" `Quick
            test_pool_drains_after_run;
        ] );
      ( "reorder",
        [
          Alcotest.test_case "in order" `Quick test_reorder_in_order;
          Alcotest.test_case "single swap" `Quick test_reorder_single_swap;
          Alcotest.test_case "late burst" `Quick test_reorder_late_burst;
          Alcotest.test_case "losses are not reordering" `Quick test_reorder_with_losses;
          Alcotest.test_case "interleaved streams" `Quick test_reorder_interleaved;
        ] );
      ( "karnet",
        [
          Alcotest.test_case "edge re-encode rescues strays" `Quick test_edge_reencode;
          Alcotest.test_case "healthy path is deterministic" `Quick
            test_karnet_full_path_deterministic;
        ] );
      ( "sharded",
        [
          Alcotest.test_case "net15 trace identical at r=1/2/4/8" `Slow
            test_sharded_determinism_net15;
          Alcotest.test_case "rnp28 trace identical at r=2/4" `Slow
            test_sharded_determinism_rnp28;
          Alcotest.test_case "zero-delay cut rejected" `Quick
            test_sharded_zero_delay_cut_rejected;
        ] );
    ]
