(* The serving control plane: workload generator, LRU cache with epochs,
   single-flight batcher, and the end-to-end server — including the
   byte-determinism of the whole service under any pool width and the
   replay of the committed golden trace. *)

module Graph = Topo.Graph
module Workload = Kar_service.Workload
module Cache = Kar_service.Cache
module Batcher = Kar_service.Batcher
module Server = Kar_service.Server
module Engine = Netsim.Engine
module Pool = Util.Pool

let testbed = Experiments.Service.testbed ~n_core:16 ()

(* --- Stats percentiles (satellite of the service metrics) --- *)

let test_percentiles () =
  let xs = Array.init 100 (fun i -> float_of_int (i + 1)) in
  Alcotest.(check (float 0.0)) "p50 of 1..100" 50.0 (Util.Stats.p50 xs);
  Alcotest.(check (float 0.0)) "p95 of 1..100" 95.0 (Util.Stats.p95 xs);
  Alcotest.(check (float 0.0)) "p99 of 1..100" 99.0 (Util.Stats.p99 xs);
  Alcotest.(check (float 0.0)) "p100 is the max" 100.0
    (Util.Stats.percentile_nearest_rank 100.0 xs);
  Alcotest.(check (float 0.0)) "tiny p is the min" 1.0
    (Util.Stats.percentile_nearest_rank 0.5 xs);
  (* nearest-rank returns an observed sample, input order irrelevant *)
  let ys = [| 9.0; 1.0; 5.0 |] in
  Alcotest.(check (float 0.0)) "p50 of 3" 5.0 (Util.Stats.p50 ys);
  Alcotest.(check (float 0.0)) "p99 of 3" 9.0 (Util.Stats.p99 ys);
  Alcotest.(check (float 0.0)) "singleton" 7.0 (Util.Stats.p99 [| 7.0 |]);
  Alcotest.check_raises "empty rejected"
    (Invalid_argument "Stats.percentile_nearest_rank: empty") (fun () ->
      ignore (Util.Stats.p50 [||]));
  Alcotest.check_raises "p out of range"
    (Invalid_argument "Stats.percentile_nearest_rank: p out of range")
    (fun () -> ignore (Util.Stats.percentile_nearest_rank 0.0 ys))

(* --- workload generator --- *)

let test_workload_deterministic () =
  let sp = { Workload.default with Workload.n = 500 } in
  let a = Workload.generate testbed sp in
  let b = Workload.generate testbed sp in
  Alcotest.(check bool) "same spec, same workload" true (a = b);
  let c =
    Workload.generate testbed { sp with Workload.seed = sp.Workload.seed + 1 }
  in
  Alcotest.(check bool) "seed changes the workload" true (a <> c)

let test_workload_shape () =
  let sp = { Workload.default with Workload.n = 1_000 } in
  let reqs = Workload.generate testbed sp in
  Alcotest.(check int) "count" 1_000 (Array.length reqs);
  Array.iteri
    (fun i (r : Workload.request) ->
      Alcotest.(check int) "seq" i r.Workload.seq;
      Alcotest.(check bool) "src is edge" false (Graph.is_core testbed r.Workload.src);
      Alcotest.(check bool) "dst is edge" false (Graph.is_core testbed r.Workload.dst);
      Alcotest.(check bool) "src <> dst" true (r.Workload.src <> r.Workload.dst);
      Alcotest.(check bool) "arrivals strictly increase" true
        (r.Workload.arrival > (if i = 0 then 0.0 else reqs.(i - 1).Workload.arrival)))
    reqs;
  (* open loop: mean inter-arrival ~ 1/rate (Poisson, so loose bounds) *)
  let span = reqs.(999).Workload.arrival -. reqs.(0).Workload.arrival in
  let mean_gap = span /. 999.0 in
  Alcotest.(check bool) "mean inter-arrival within 20% of 1/rate" true
    (mean_gap > 0.8 /. sp.Workload.rate && mean_gap < 1.2 /. sp.Workload.rate)

let count_top_pair skew =
  let sp = { Workload.default with Workload.n = 2_000; skew } in
  let reqs = Workload.generate testbed sp in
  let top_src, top_dst = (Workload.pairs testbed ~seed:sp.Workload.seed).(0) in
  Array.fold_left
    (fun n (r : Workload.request) ->
      if r.Workload.src = top_src && r.Workload.dst = top_dst then n + 1 else n)
    0 reqs

let test_workload_zipf_skew () =
  let uniform = count_top_pair 0.0 and skewed = count_top_pair 1.2 in
  (* 240 pairs at skew 0: the top pair gets ~8 of 2000; at skew 1.2 the
     head dominates.  Factor 5 keeps the test far from both. *)
  Alcotest.(check bool)
    (Printf.sprintf "skew concentrates the head (%d -> %d)" uniform skewed)
    true
    (skewed > 5 * (max 1 uniform))

let test_pairs_ranked_universe () =
  let pairs = Workload.pairs testbed ~seed:3 in
  let edges = List.length (Graph.edge_nodes testbed) in
  Alcotest.(check int) "all ordered pairs" (edges * (edges - 1)) (Array.length pairs);
  let seen = Hashtbl.create 97 in
  Array.iter
    (fun (s, d) ->
      Alcotest.(check bool) "distinct endpoints" true (s <> d);
      Alcotest.(check bool) "no duplicate pair" false (Hashtbl.mem seen (s, d));
      Hashtbl.add seen (s, d) ())
    pairs;
  (* rank order is a function of the seed, not of node numbering *)
  Alcotest.(check bool) "seed shuffles ranks" true
    (Workload.pairs testbed ~seed:3 <> Workload.pairs testbed ~seed:4)

(* --- LRU cache with epochs --- *)

let test_cache_lru_eviction () =
  let c = Cache.create ~capacity:2 () in
  Cache.put c "a" 1;
  Cache.put c "b" 2;
  (* touch a so b is the LRU entry *)
  Alcotest.(check bool) "a hits" true (Cache.lookup c "a" = Cache.Hit 1);
  Cache.put c "c" 3;
  Alcotest.(check bool) "b evicted" true (Cache.lookup c "b" = Cache.Miss);
  Alcotest.(check bool) "a survives" true (Cache.lookup c "a" = Cache.Hit 1);
  Alcotest.(check bool) "c resident" true (Cache.lookup c "c" = Cache.Hit 3);
  Alcotest.(check int) "one eviction" 1 (Cache.evictions c);
  Alcotest.(check int) "size at capacity" 2 (Cache.size c)

let test_cache_epoch_invalidation () =
  let c = Cache.create ~capacity:8 () in
  Cache.put c 1 "one";
  Cache.put c 2 "two";
  Cache.bump_epoch c;
  Alcotest.(check int) "epoch bumped" 1 (Cache.epoch c);
  Alcotest.(check bool) "stale, not hit" true (Cache.lookup c 1 = Cache.Stale);
  (* the stale entry was dropped by the lookup *)
  Alcotest.(check bool) "second lookup is a cold miss" true
    (Cache.lookup c 1 = Cache.Miss);
  (* refilled entries hit under the new epoch *)
  Cache.put c 1 "one'";
  Alcotest.(check bool) "refill hits" true (Cache.lookup c 1 = Cache.Hit "one'");
  Alcotest.(check int) "stale counted once" 1 (Cache.stale c);
  Alcotest.(check int) "evictions untouched by epochs" 0 (Cache.evictions c)

let test_cache_hit_ratio () =
  let c = Cache.create ~capacity:4 () in
  Alcotest.(check (float 0.0)) "no lookups yet" 0.0 (Cache.hit_ratio c);
  Cache.put c 0 0;
  ignore (Cache.lookup c 0);
  ignore (Cache.lookup c 0);
  ignore (Cache.lookup c 9);
  ignore (Cache.lookup c 9);
  Alcotest.(check (float 1e-9)) "2 hits of 4" 0.5 (Cache.hit_ratio c)

(* --- single-flight batcher --- *)

let mk_batcher ?(batch_size = 2) ?(max_delay = 0.01) ?(workers = 1) engine =
  Batcher.create ~engine ~batch_size ~max_delay ~workers
    ~dispatch_overhead:0.0
    ~compute:(fun k -> k * 10)
    ~cost:(fun _ _ -> 0.001)
    ()

let test_batcher_single_flight () =
  let engine = Engine.create () in
  let b = mk_batcher engine in
  let got = ref [] in
  let ready tag r =
    got := (tag, Engine.now engine, Result.get_ok r) :: !got
  in
  ignore
    (Engine.schedule_at engine 0.0 (fun () ->
         Batcher.request b 1 ~ready:(ready "first");
         Batcher.request b 1 ~ready:(ready "dup");
         Alcotest.(check int) "one distinct key queued" 1 (Batcher.queued b);
         Alcotest.(check int) "two waiters" 2 (Batcher.waiting b);
         (* second distinct key reaches batch_size: dispatch *)
         Batcher.request b 2 ~ready:(ready "other")));
  Engine.run engine;
  Alcotest.(check int) "one batch" 1 (Batcher.batches b);
  Alcotest.(check int) "two keys planned" 2 (Batcher.computed b);
  Alcotest.(check int) "one request coalesced" 1 (Batcher.coalesced b);
  Alcotest.(check int) "max batch" 2 (Batcher.max_batch b);
  let by_tag tag = List.find (fun (t, _, _) -> t = tag) !got in
  let _, t1, v1 = by_tag "first" and _, td, vd = by_tag "dup" in
  let _, t2, v2 = by_tag "other" in
  Alcotest.(check int) "key 1 value" 10 v1;
  Alcotest.(check int) "dup shares the result" 10 vd;
  Alcotest.(check int) "key 2 value" 20 v2;
  (* one modelled worker serves the two keys back to back *)
  Alcotest.(check (float 1e-12)) "key 1 completion" 0.001 t1;
  Alcotest.(check (float 1e-12)) "dup completes with its key" t1 td;
  Alcotest.(check (float 1e-12)) "key 2 queues behind key 1" 0.002 t2

let test_batcher_timer_dispatch () =
  let engine = Engine.create () in
  let b = mk_batcher ~batch_size:100 ~max_delay:0.005 engine in
  let done_at = ref nan in
  ignore
    (Engine.schedule_at engine 0.0 (fun () ->
         Batcher.request b 7 ~ready:(fun r ->
             Alcotest.(check int) "value" 70 (Result.get_ok r);
             done_at := Engine.now engine)));
  Engine.run engine;
  (* never reached batch_size: the max_delay timer fired the batch *)
  Alcotest.(check (float 1e-12)) "timer + modelled cost" 0.006 !done_at;
  Alcotest.(check int) "one batch" 1 (Batcher.batches b)

let test_batcher_compute_error () =
  let engine = Engine.create () in
  let b =
    Batcher.create ~engine ~batch_size:1 ~max_delay:0.01 ~workers:1
      ~dispatch_overhead:0.0
      ~compute:(fun k -> if k = 13 then failwith "unlucky" else k)
      ~cost:(fun _ _ -> 0.001)
      ()
  in
  let ok = ref 0 and err = ref 0 in
  ignore
    (Engine.schedule_at engine 0.0 (fun () ->
         Batcher.request b 13 ~ready:(fun r ->
             match r with Ok _ -> incr ok | Error _ -> incr err);
         Batcher.request b 5 ~ready:(fun r ->
             match r with Ok _ -> incr ok | Error _ -> incr err)));
  Engine.run engine;
  Alcotest.(check int) "error delivered as Error" 1 !err;
  Alcotest.(check int) "other key unaffected" 1 !ok

(* --- end-to-end server --- *)

let small_run ?failures ?sink () =
  let sp =
    { Workload.default with Workload.n = 1_000; rate = 10_000.0; seed = 5 }
  in
  let reqs = Workload.generate testbed sp in
  let server = Server.create ~graph:testbed () in
  Server.run server ?sink ?failures ~keep_records:true reqs

let test_server_serves_everyone () =
  let r = small_run () in
  Alcotest.(check int) "all requests recorded" 1_000
    (Array.length r.Server.records);
  Array.iter
    (fun (rec_ : Server.record) ->
      Alcotest.(check bool) "completion after arrival" true
        (rec_.Server.completion > rec_.Server.arrival))
    r.Server.records;
  Alcotest.(check int) "nothing unroutable on a healthy graph" 0 r.Server.unroutable;
  Alcotest.(check bool) "cache did some work" true (r.Server.hit_ratio > 0.3);
  Alcotest.(check bool) "percentiles ordered" true
    (r.Server.p50 <= r.Server.p95 && r.Server.p95 <= r.Server.p99);
  (* conservation: every lookup outcome is a hit, a miss, or stale *)
  Alcotest.(check int) "lookup conservation" 1_000
    (r.Server.cache_hits + r.Server.cache_misses + r.Server.cache_stale)

let render_at_jobs jobs render =
  Pool.set_jobs jobs;
  let out = render () in
  Pool.set_jobs (Pool.default_jobs ());
  out

let test_trace_deterministic_vs_jobs () =
  let at1 = render_at_jobs 1 Experiments.Service.canonical_trace in
  let at8 = render_at_jobs 8 Experiments.Service.canonical_trace in
  Alcotest.(check bool) "canonical trace byte-identical at -j 1 and -j 8" true
    (String.equal at1 at8)

let test_trace_matches_fixture () =
  (* dune runtest stages the fixture next to the executable; a bare
     `dune exec test/test_service.exe` runs from the repo root *)
  let path =
    let f = "fixtures/service_1k.jsonl" in
    if Sys.file_exists f then f else Filename.concat "test" f
  in
  let ic = open_in_bin path in
  let golden = really_input_string ic (in_channel_length ic) in
  close_in ic;
  let fresh = Experiments.Service.canonical_trace () in
  Alcotest.(check bool)
    "fresh trace byte-identical to committed fixture (regenerate with \
     test/gen_fixtures.exe after intentional changes)"
    true
    (String.equal golden fresh)

let test_svc_experiment_deterministic () =
  let render () = Experiments.Service.to_string ~profile:Experiments.Profile.quick () in
  let at1 = render_at_jobs 1 render in
  let at8 = render_at_jobs 8 render in
  Alcotest.(check bool) "svc output byte-identical at -j 1 and -j 8" true
    (String.equal at1 at8)

(* --- the replan storm: epoch invalidation then recovery --- *)

let test_storm_invalidation_and_recovery () =
  let s = Experiments.Service.storm () in
  let r = s.Experiments.Service.report in
  Alcotest.(check int) "fail + repair bumped the epoch twice" 2 r.Server.epoch;
  Alcotest.(check bool) "invalidation produced stale lookups" true
    (r.Server.cache_stale > 0);
  let ratios = s.Experiments.Service.hit_ratio_per_bucket in
  let bucket t =
    Stdlib.min (Array.length ratios - 1) (int_of_float (t /. s.Experiments.Service.bucket_s))
  in
  let fail_b = bucket s.Experiments.Service.fail_at in
  let repair_b = bucket s.Experiments.Service.repair_at in
  (* the failure bucket pays the miss storm... *)
  Alcotest.(check bool)
    (Printf.sprintf "hit ratio dips at the failure (%.2f -> %.2f)"
       ratios.(fail_b - 1) ratios.(fail_b))
    true
    (ratios.(fail_b) < ratios.(fail_b - 1));
  (* ...and the cache refills against the new epoch before the repair *)
  Alcotest.(check bool)
    (Printf.sprintf "hit ratio recovers before the repair (%.2f -> %.2f)"
       ratios.(fail_b) ratios.(repair_b - 1))
    true
    (ratios.(repair_b - 1) > ratios.(fail_b));
  (* the repair is its own storm, recovered by the end of the run *)
  let last = Array.length ratios - 1 in
  Alcotest.(check bool)
    (Printf.sprintf "recovered after the repair (%.2f -> %.2f)"
       ratios.(repair_b) ratios.(last))
    true
    (ratios.(last) > ratios.(repair_b))

let test_failed_link_avoided () =
  (* plans computed after the failure route around the failed link *)
  let g = testbed in
  let link = Experiments.Service.storm_link g in
  let sp = { Workload.default with Workload.n = 400; rate = 10_000.0; seed = 5 } in
  let reqs = Workload.generate g sp in
  let server = Server.create ~graph:g () in
  Server.fail_link server link;
  let r = Server.run server reqs in
  let l = Graph.link g link in
  let a = l.Graph.ep0.Graph.node and b = l.Graph.ep1.Graph.node in
  Alcotest.(check bool) "still mostly routable" true
    (r.Server.unroutable < Array.length reqs / 10);
  (* spot-check via the controller: a replan under the same restriction
     never crosses the failed link *)
  let src, dst = (Workload.pairs g ~seed:sp.Workload.seed).(0) in
  let usable (l' : Graph.link) = l'.Graph.id <> link in
  let plan = Kar.Controller.route ~usable g ~src ~dst ~protection:[] in
  let rec hops = function
    | x :: (y :: _ as tl) -> (x, y) :: hops tl
    | _ -> []
  in
  List.iter
    (fun (x, y) ->
      Alcotest.(check bool) "avoids the failed link" false
        ((x = a && y = b) || (x = b && y = a)))
    (hops plan.Kar.Route.core_path)

let () =
  Alcotest.run "service"
    [
      ( "stats",
        [ Alcotest.test_case "nearest-rank percentiles" `Quick test_percentiles ] );
      ( "workload",
        [
          Alcotest.test_case "deterministic in the spec" `Quick
            test_workload_deterministic;
          Alcotest.test_case "shape and arrivals" `Quick test_workload_shape;
          Alcotest.test_case "zipf skew concentrates" `Quick test_workload_zipf_skew;
          Alcotest.test_case "pair universe" `Quick test_pairs_ranked_universe;
        ] );
      ( "cache",
        [
          Alcotest.test_case "lru eviction order" `Quick test_cache_lru_eviction;
          Alcotest.test_case "epoch invalidation" `Quick test_cache_epoch_invalidation;
          Alcotest.test_case "hit ratio" `Quick test_cache_hit_ratio;
        ] );
      ( "batcher",
        [
          Alcotest.test_case "single flight" `Quick test_batcher_single_flight;
          Alcotest.test_case "timer dispatch" `Quick test_batcher_timer_dispatch;
          Alcotest.test_case "compute error" `Quick test_batcher_compute_error;
        ] );
      ( "server",
        [
          Alcotest.test_case "serves everyone" `Quick test_server_serves_everyone;
          Alcotest.test_case "trace deterministic vs -j" `Quick
            test_trace_deterministic_vs_jobs;
          Alcotest.test_case "golden fixture replay" `Quick test_trace_matches_fixture;
          Alcotest.test_case "svc experiment deterministic vs -j" `Slow
            test_svc_experiment_deterministic;
        ] );
      ( "storm",
        [
          Alcotest.test_case "invalidation then recovery" `Quick
            test_storm_invalidation_and_recovery;
          Alcotest.test_case "replans avoid the failed link" `Quick
            test_failed_link_avoided;
        ] );
    ]
